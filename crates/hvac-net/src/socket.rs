//! Real socket transport: TCP and Unix-domain streams behind the [`Fabric`]
//! abstraction.
//!
//! The loopback fabric models Mercury with in-process queues; this module
//! carries the same RPCs over real stream sockets using the length-prefixed
//! frames of [`crate::framing`]. The design mirrors Mercury's connection
//! model:
//!
//! * **Endpoint registry** — logical names (`node0/srv0`) map to concrete
//!   [`EndpointUri`]s (`tcp:127.0.0.1:4123`, `unix:/tmp/hvac-7-0.sock`),
//!   registered either by a local [`SocketBackend::serve`] (which binds and
//!   records its actual address) or externally via config/env
//!   (`HVAC_ENDPOINTS`) for cross-process clients.
//! * **Connection pool** — one multiplexed connection per destination URI.
//!   Concurrent callers write frames under a per-connection writer lock,
//!   tagged with a connection-local request id; a reader thread demuxes
//!   reply frames back to per-call channels. Dead connections are replaced
//!   lazily on the next call.
//! * **Server core** — an accept loop (non-blocking, so shutdown is a flag
//!   flip away), one frame-decoder thread per accepted connection, and
//!   exactly `workers` handler threads draining a shared job queue — the
//!   same shared-FIFO shape as the loopback fabric and the paper's server.
//!
//! Lock discipline: the three socket classes (`NET_SOCKET_POOL`,
//! `NET_SOCKET_CONN`, `NET_SOCKET_WRITER`) are *leaves* of the `hvac-sync`
//! hierarchy. Every guard here lives in its own block and is dropped before
//! connecting, spawning, sending, or sleeping, so the socket path adds zero
//! edges to the static lock graph. The buffer pool's internal `NET_POOL`
//! free-list mutex is likewise only ever held inside `acquire`/release with
//! no socket lock held, so pooled frame reads and reply encodes keep that
//! property.

use crate::fabric::{FabricStats, Reply, RpcHandler};
use crate::framing;
use crate::pool::BufferPool;
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use hvac_sync::{classes, OrderedMutex, OrderedRwLock};
use hvac_types::{HvacError, Result};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which address family a socket fabric binds by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketFamily {
    /// TCP on 127.0.0.1 (ephemeral ports unless told otherwise).
    Tcp,
    /// Unix-domain stream sockets under the system temp directory.
    Unix,
}

/// Knobs of a socket-backed fabric.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Address family used when `serve` has to pick its own bind address.
    pub family: SocketFamily,
    /// Per-frame body cap enforced by every encoder and decoder.
    pub max_frame: usize,
    /// Slab pool backing frame reads and reply encodes on this fabric;
    /// `None` falls back to per-frame heap allocation (the legacy path,
    /// kept for the zero-copy-off benchmark arm and differential tests).
    pub pool: Option<BufferPool>,
}

impl Default for SocketConfig {
    fn default() -> Self {
        Self {
            family: SocketFamily::Tcp,
            max_frame: framing::DEFAULT_MAX_FRAME,
            pool: Some(BufferPool::new()),
        }
    }
}

/// A concrete socket address in `tcp:host:port` / `unix:/path` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndpointUri {
    /// `host:port` for a TCP endpoint.
    Tcp(String),
    /// Filesystem path of a Unix-domain socket.
    Unix(PathBuf),
}

impl EndpointUri {
    /// Parse `tcp:host:port` or `unix:/path`.
    pub fn parse(s: &str) -> Result<Self> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            if rest
                .rsplit_once(':')
                .is_none_or(|(h, p)| h.is_empty() || p.parse::<u16>().is_err())
            {
                return Err(HvacError::InvalidConfig(format!(
                    "bad TCP endpoint {s:?} (want tcp:host:port)"
                )));
            }
            Ok(EndpointUri::Tcp(rest.to_string()))
        } else if let Some(rest) = s.strip_prefix("unix:") {
            if rest.is_empty() {
                return Err(HvacError::InvalidConfig(format!(
                    "bad Unix endpoint {s:?} (want unix:/path)"
                )));
            }
            Ok(EndpointUri::Unix(PathBuf::from(rest)))
        } else {
            Err(HvacError::InvalidConfig(format!(
                "unknown endpoint scheme in {s:?} (want tcp: or unix:)"
            )))
        }
    }
}

impl std::fmt::Display for EndpointUri {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EndpointUri::Tcp(hp) => write!(f, "tcp:{hp}"),
            EndpointUri::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// Parse an `HVAC_ENDPOINTS`-style list: `name=uri` pairs separated by `;`
/// or `,` (socket paths therefore must not contain either), e.g.
/// `node0/srv0=tcp:127.0.0.1:4123;node1/srv0=unix:/tmp/h.sock`.
pub fn parse_endpoint_list(spec: &str) -> Result<Vec<(String, EndpointUri)>> {
    let mut out = Vec::new();
    for item in spec.split([';', ',']) {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let Some((name, uri)) = item.split_once('=') else {
            return Err(HvacError::InvalidConfig(format!(
                "bad endpoint entry {item:?} (want name=uri)"
            )));
        };
        out.push((name.trim().to_string(), EndpointUri::parse(uri.trim())?));
    }
    Ok(out)
}

/// Endpoint list from the `HVAC_ENDPOINTS` environment variable (empty when
/// unset).
pub fn endpoints_from_env() -> Result<Vec<(String, EndpointUri)>> {
    match std::env::var("HVAC_ENDPOINTS") {
        Ok(v) => parse_endpoint_list(&v),
        Err(_) => Ok(Vec::new()),
    }
}

/// One live stream of either family, unified behind `Read`/`Write`.
#[derive(Debug)]
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn connect(uri: &EndpointUri) -> std::io::Result<Self> {
        match uri {
            EndpointUri::Tcp(hp) => {
                let s = TcpStream::connect(hp.as_str())?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            EndpointUri::Unix(p) => Ok(Stream::Unix(UnixStream::connect(p)?)),
        }
    }

    fn try_clone(&self) -> std::io::Result<Self> {
        match self {
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
        }
    }

    fn shutdown(&self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

struct SocketEndpointEntry {
    uri: EndpointUri,
    served: bool,
    down: Arc<AtomicBool>,
}

/// One call's time budget: the total deadline and when the call started.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CallClock {
    /// The caller's whole deadline for this RPC.
    pub(crate) deadline: Duration,
    /// When the fabric accepted the call.
    pub(crate) start: Instant,
}

impl CallClock {
    /// What is left of the budget right now.
    fn remaining(self) -> Duration {
        self.deadline.saturating_sub(self.start.elapsed())
    }
}

/// The socket half of [`crate::fabric::Fabric`]: endpoint registry plus
/// client connection pool. Fault injection, stats, and the down-latch
/// semantics live in the shared fabric prologue so they behave identically
/// on both backends.
pub(crate) struct SocketBackend {
    config: SocketConfig,
    endpoints: OrderedRwLock<HashMap<String, SocketEndpointEntry>>,
    pool: OrderedMutex<HashMap<String, Arc<Connection>>>,
}

impl SocketBackend {
    pub(crate) fn new(config: SocketConfig) -> Self {
        Self {
            config,
            endpoints: OrderedRwLock::new(classes::FABRIC_ENDPOINTS, HashMap::new()),
            pool: OrderedMutex::new(classes::NET_SOCKET_POOL, HashMap::new()),
        }
    }

    /// Record (or overwrite) the concrete address of a logical endpoint.
    /// The down-latch of an existing entry survives, so re-registering an
    /// address never silently revives a crashed endpoint.
    pub(crate) fn register_endpoint(&self, addr: &str, uri: EndpointUri) {
        let mut eps = self.endpoints.write();
        match eps.get_mut(addr) {
            Some(entry) => entry.uri = uri,
            None => {
                eps.insert(
                    addr.to_string(),
                    SocketEndpointEntry {
                        uri,
                        served: false,
                        down: Arc::new(AtomicBool::new(false)),
                    },
                );
            }
        }
    }

    /// `(uri, down-latch)` of a registered endpoint.
    pub(crate) fn resolve(&self, addr: &str) -> Option<(EndpointUri, Arc<AtomicBool>)> {
        let eps = self.endpoints.read();
        eps.get(addr).map(|e| (e.uri.clone(), e.down.clone()))
    }

    pub(crate) fn endpoint_uri(&self, addr: &str) -> Option<String> {
        let eps = self.endpoints.read();
        eps.get(addr).map(|e| e.uri.to_string())
    }

    pub(crate) fn set_down(&self, addr: &str, down: bool) -> bool {
        let eps = self.endpoints.read();
        match eps.get(addr) {
            Some(e) => {
                e.down.store(down, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    pub(crate) fn is_up(&self, addr: &str) -> bool {
        let eps = self.endpoints.read();
        eps.get(addr)
            .map(|e| !e.down.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    pub(crate) fn endpoint_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.endpoints.read().keys().cloned().collect();
        names.sort();
        names
    }

    pub(crate) fn unregister(&self, addr: &str) {
        self.endpoints.write().remove(addr);
    }

    /// Bind a listener for `addr` (honouring a pre-registered address, else
    /// an ephemeral one of the configured family), record the actual bound
    /// address in the registry, and spawn the accept/worker threads.
    pub(crate) fn serve(
        &self,
        addr: &str,
        workers: usize,
        handler: Arc<dyn RpcHandler>,
    ) -> Result<(ServerCore, Arc<AtomicBool>)> {
        let hint = {
            let eps = self.endpoints.read();
            match eps.get(addr) {
                Some(e) if e.served => {
                    return Err(HvacError::InvalidConfig(format!(
                        "endpoint {addr} already registered"
                    )));
                }
                Some(e) => Some(e.uri.clone()),
                None => None,
            }
        };
        let listen = match hint {
            Some(uri) => uri,
            None => match self.config.family {
                SocketFamily::Tcp => EndpointUri::Tcp("127.0.0.1:0".to_string()),
                SocketFamily::Unix => EndpointUri::Unix(ephemeral_unix_path()),
            },
        };
        let (listener, actual, uds_path) = Listener::bind(&listen).map_err(HvacError::Io)?;
        let down = Arc::new(AtomicBool::new(false));
        {
            let mut eps = self.endpoints.write();
            if eps.get(addr).is_some_and(|e| e.served) {
                drop(eps);
                if let Some(p) = &uds_path {
                    let _ = std::fs::remove_file(p);
                }
                return Err(HvacError::InvalidConfig(format!(
                    "endpoint {addr} already registered"
                )));
            }
            eps.insert(
                addr.to_string(),
                SocketEndpointEntry {
                    uri: actual.clone(),
                    served: true,
                    down: down.clone(),
                },
            );
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let (jobs_tx, jobs_rx) = unbounded::<ServerJob>();
        let conns = Arc::new(OrderedMutex::new(classes::NET_SOCKET_CONN, Vec::new()));
        let readers = Arc::new(OrderedMutex::new(classes::FABRIC_THREADS, Vec::new()));

        let mut worker_handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let rx: Receiver<ServerJob> = jobs_rx.clone();
            let handler = handler.clone();
            let max_frame = self.config.max_frame;
            let pool = self.config.pool.clone();
            let name = format!("hvac-sock-{addr}-{w}");
            let spawned = std::thread::Builder::new()
                .name(name)
                .spawn(move || server_worker(rx, handler, max_frame, pool));
            match spawned {
                Ok(h) => worker_handles.push(h),
                Err(e) => {
                    self.unregister(addr);
                    drop(jobs_tx);
                    for t in worker_handles {
                        let _ = t.join();
                    }
                    if let Some(p) = &uds_path {
                        let _ = std::fs::remove_file(p);
                    }
                    return Err(HvacError::Io(e));
                }
            }
        }

        let accept = {
            let shutdown = shutdown.clone();
            let conns = conns.clone();
            let readers = readers.clone();
            let max_frame = self.config.max_frame;
            let pool = self.config.pool.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("hvac-sock-accept-{addr}"))
                .spawn(move || {
                    accept_loop(listener, shutdown, jobs_tx, conns, readers, max_frame, pool)
                });
            match spawned {
                Ok(h) => h,
                Err(e) => {
                    self.unregister(addr);
                    // jobs_tx moved into the failed spawn closure and is
                    // gone; the workers drain and exit.
                    for t in worker_handles {
                        let _ = t.join();
                    }
                    if let Some(p) = &uds_path {
                        let _ = std::fs::remove_file(p);
                    }
                    return Err(HvacError::Io(e));
                }
            }
        };

        Ok((
            ServerCore {
                shutdown,
                accept: Some(accept),
                workers: worker_handles,
                readers,
                conns,
                uds_path,
            },
            down,
        ))
    }

    /// Send one framed request over the pooled connection and wait for its
    /// demuxed reply. `request_bytes` is bumped only after the frame is on
    /// the wire, preserving the fabric's stats-ledger invariant.
    pub(crate) fn dispatch(
        &self,
        addr: &str,
        uri: &EndpointUri,
        request: Bytes,
        clock: CallClock,
        discard_reply: bool,
        stats: &FabricStats,
    ) -> Result<Reply> {
        let conn = self.connection(addr, uri)?;
        let deadline_ms = u32::try_from(clock.remaining().as_millis())
            .unwrap_or(u32::MAX)
            .max(1);
        let (req_id, reply_rx) = conn.begin();
        let frame = framing::encode_request(req_id, deadline_ms, &request, self.config.max_frame)?;
        if let Err(e) = conn.send_frame(&frame) {
            conn.forget(req_id);
            conn.mark_dead();
            return Err(HvacError::ServerDown(format!("{addr} (send failed: {e})")));
        }
        stats
            .request_bytes
            .fetch_add(request.len() as u64, Ordering::Relaxed);
        if discard_reply {
            // Hung server: the request was delivered (the handler will run)
            // but the reply is abandoned — wait out the caller's deadline
            // exactly as the loopback fabric does.
            conn.forget(req_id);
            std::thread::sleep(clock.remaining());
            return Err(HvacError::RpcTimeout {
                addr: addr.to_string(),
                elapsed: clock.start.elapsed(),
            });
        }
        match reply_rx.recv_timeout(clock.remaining()) {
            Ok(reply) => Ok(reply),
            Err(RecvTimeoutError::Timeout) => {
                conn.forget(req_id);
                Err(HvacError::RpcTimeout {
                    addr: addr.to_string(),
                    elapsed: clock.start.elapsed(),
                })
            }
            Err(RecvTimeoutError::Disconnected) => Err(HvacError::Rpc(format!(
                "{addr}: connection closed mid-call"
            ))),
        }
    }

    /// The pooled connection for `uri`, dialling a fresh one (outside any
    /// lock) when none exists or the cached one has died.
    fn connection(&self, addr: &str, uri: &EndpointUri) -> Result<Arc<Connection>> {
        let key = uri.to_string();
        let existing = {
            let pool = self.pool.lock();
            pool.get(&key).cloned()
        };
        if let Some(c) = &existing {
            if !c.is_dead() {
                return Ok(c.clone());
            }
        }
        let fresh = Connection::connect(uri, self.config.max_frame, self.config.pool.clone())
            .map(Arc::new)
            .map_err(|e| HvacError::ServerDown(format!("{addr} ({key}: {e})")))?;
        let winner = {
            let mut pool = self.pool.lock();
            match pool.get(&key) {
                Some(c) if !c.is_dead() => c.clone(),
                _ => {
                    pool.insert(key, fresh.clone());
                    fresh.clone()
                }
            }
        };
        Ok(winner)
    }
}

impl Drop for SocketBackend {
    fn drop(&mut self) {
        // Tear down pooled connections so their reader threads exit.
        let conns: Vec<Arc<Connection>> = {
            let mut pool = self.pool.lock();
            pool.drain().map(|(_, c)| c).collect()
        };
        drop(conns);
    }
}

/// Ephemeral Unix socket path: unique per process × sequence number, short
/// enough for the 108-byte `sun_path` limit.
fn ephemeral_unix_path() -> PathBuf {
    static UDS_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = UDS_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("hvac-{}-{seq}.sock", std::process::id()))
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    /// Bind (non-blocking) and report the actual address plus the socket
    /// file to unlink at teardown, if any. A stale Unix socket file from a
    /// dead process is removed and the bind retried once.
    fn bind(uri: &EndpointUri) -> std::io::Result<(Self, EndpointUri, Option<PathBuf>)> {
        match uri {
            EndpointUri::Tcp(hp) => {
                let l = TcpListener::bind(hp.as_str())?;
                l.set_nonblocking(true)?;
                let actual = EndpointUri::Tcp(l.local_addr()?.to_string());
                Ok((Listener::Tcp(l), actual, None))
            }
            EndpointUri::Unix(path) => {
                let l = match UnixListener::bind(path) {
                    Ok(l) => l,
                    Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                        std::fs::remove_file(path)?;
                        UnixListener::bind(path)?
                    }
                    Err(e) => return Err(e),
                };
                l.set_nonblocking(true)?;
                Ok((
                    Listener::Unix(l),
                    EndpointUri::Unix(path.clone()),
                    Some(path.clone()),
                ))
            }
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

struct ServerJob {
    writer: Arc<OrderedMutex<Stream>>,
    req_id: u64,
    deadline_ms: u32,
    received: Instant,
    payload: Bytes,
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: Listener,
    shutdown: Arc<AtomicBool>,
    jobs: Sender<ServerJob>,
    conns: Arc<OrderedMutex<Vec<Stream>>>,
    readers: Arc<OrderedMutex<Vec<JoinHandle<()>>>>,
    max_frame: usize,
    pool: Option<BufferPool>,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(stream) => {
                let keeper = match stream.try_clone() {
                    Ok(c) => c,
                    Err(_) => continue,
                };
                {
                    conns.lock().push(keeper);
                }
                let jobs = jobs.clone();
                let pool = pool.clone();
                let spawned = std::thread::Builder::new()
                    .name("hvac-sock-conn".to_string())
                    .spawn(move || conn_reader(stream, jobs, max_frame, pool));
                if let Ok(h) = spawned {
                    // lockgraph: readers -> FABRIC_THREADS
                    readers.lock().push(h);
                }
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Per-connection frame decoder: turns valid request frames into jobs for
/// the worker pool; any protocol violation or I/O failure drops the whole
/// connection (a desynced stream cannot be re-synchronized).
fn conn_reader(
    stream: Stream,
    jobs: Sender<ServerJob>,
    max_frame: usize,
    pool: Option<BufferPool>,
) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(OrderedMutex::new(classes::NET_SOCKET_WRITER, w)),
        Err(_) => return,
    };
    let mut r = stream;
    while let Ok(Some(body)) = framing::read_frame_pooled(&mut r, max_frame, pool.as_ref()) {
        let req = match framing::decode_request(body) {
            Ok(req) => req,
            Err(_) => break,
        };
        let job = ServerJob {
            writer: writer.clone(),
            req_id: req.req_id,
            deadline_ms: req.deadline_ms,
            received: Instant::now(),
            payload: req.payload,
        };
        if jobs.send(job).is_err() {
            break;
        }
    }
    let _ = r.shutdown();
}

fn server_worker(
    jobs: Receiver<ServerJob>,
    handler: Arc<dyn RpcHandler>,
    max_frame: usize,
    pool: Option<BufferPool>,
) {
    while let Ok(job) = jobs.recv() {
        // The wire deadline rode along for exactly this: a job that waited
        // in queue past its caller's whole budget has no one left to answer.
        if job.received.elapsed() > Duration::from_millis(u64::from(job.deadline_ms)) {
            continue;
        }
        let reply = handler.handle(job.payload);
        // The encoded frame lives in a pooled slab (one copy of header +
        // bulk straight into it); the slab returns to the pool as soon as
        // the write below drops the frame.
        if let Ok(frame) =
            framing::encode_reply_pooled(job.req_id, &reply, max_frame, pool.as_ref())
        {
            let mut w = job.writer.lock();
            let _ = w.write_all(&frame).and_then(|_| w.flush());
        }
    }
}

/// Server-side half of one socket endpoint: owns the accept loop, the
/// per-connection readers, and the worker pool. Dropping it stops the
/// listener, shuts every open connection, joins all threads, and unlinks
/// the Unix socket file.
pub(crate) struct ServerCore {
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    readers: Arc<OrderedMutex<Vec<JoinHandle<()>>>>,
    conns: Arc<OrderedMutex<Vec<Stream>>>,
    uds_path: Option<PathBuf>,
}

impl Drop for ServerCore {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let open = {
            let mut guard = self.conns.lock();
            std::mem::take(&mut *guard)
        };
        for c in &open {
            let _ = c.shutdown();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let reader_handles = {
            // lockgraph: self.readers -> FABRIC_THREADS
            let mut guard = self.readers.lock();
            std::mem::take(&mut *guard)
        };
        for h in reader_handles {
            let _ = h.join();
        }
        for h in std::mem::take(&mut self.workers) {
            let _ = h.join();
        }
        if let Some(p) = &self.uds_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

struct ConnShared {
    writer: OrderedMutex<Stream>,
    pending: OrderedMutex<HashMap<u64, Sender<Reply>>>,
    next_id: AtomicU64,
    dead: AtomicBool,
    max_frame: usize,
    pool: Option<BufferPool>,
}

/// One multiplexed client connection: a writer half shared by concurrent
/// callers and a reader thread that routes reply frames to the pending
/// call with the matching request id.
struct Connection {
    shared: Arc<ConnShared>,
    reader: OrderedMutex<Option<JoinHandle<()>>>,
}

impl Connection {
    fn connect(
        uri: &EndpointUri,
        max_frame: usize,
        pool: Option<BufferPool>,
    ) -> std::io::Result<Connection> {
        let stream = Stream::connect(uri)?;
        let rstream = stream.try_clone()?;
        let shared = Arc::new(ConnShared {
            writer: OrderedMutex::new(classes::NET_SOCKET_WRITER, stream),
            pending: OrderedMutex::new(classes::NET_SOCKET_CONN, HashMap::new()),
            next_id: AtomicU64::new(1),
            dead: AtomicBool::new(false),
            max_frame,
            pool,
        });
        let for_reader = shared.clone();
        let handle = std::thread::Builder::new()
            .name("hvac-sock-reader".to_string())
            .spawn(move || client_reader(rstream, for_reader))?;
        Ok(Connection {
            shared,
            reader: OrderedMutex::new(classes::FABRIC_THREADS, Some(handle)),
        })
    }

    /// Allocate a request id and park a reply slot for it.
    fn begin(&self) -> (u64, Receiver<Reply>) {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded::<Reply>(1);
        {
            self.shared.pending.lock().insert(id, tx);
        }
        (id, rx)
    }

    fn forget(&self, id: u64) {
        self.shared.pending.lock().remove(&id);
    }

    fn send_frame(&self, frame: &[u8]) -> std::io::Result<()> {
        let mut w = self.shared.writer.lock();
        w.write_all(frame)?;
        w.flush()
    }

    fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::Relaxed)
    }

    fn mark_dead(&self) {
        self.shared.dead.store(true, Ordering::Relaxed);
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.mark_dead();
        {
            let w = self.shared.writer.lock();
            let _ = w.shutdown();
        }
        let handle = {
            let mut guard = self.reader.lock();
            guard.take()
        };
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// Client-side demux loop: one per connection. Exits (and wakes every
/// pending caller with a disconnect) on EOF, I/O failure, or the first
/// protocol violation.
fn client_reader(mut r: Stream, shared: Arc<ConnShared>) {
    while let Ok(Some(body)) =
        framing::read_frame_pooled(&mut r, shared.max_frame, shared.pool.as_ref())
    {
        let rf = match framing::decode_reply(body) {
            Ok(rf) => rf,
            Err(_) => break,
        };
        let slot = {
            let mut pending = shared.pending.lock();
            pending.remove(&rf.req_id)
        };
        if let Some(tx) = slot {
            let _ = tx.send(rf.reply);
        }
    }
    shared.dead.store(true, Ordering::Relaxed);
    let _ = r.shutdown();
    let waiters = {
        let mut pending = shared.pending.lock();
        std::mem::take(&mut *pending)
    };
    // Dropping the senders disconnects every parked caller immediately.
    drop(waiters);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_uri_parse_and_display_round_trip() {
        for s in ["tcp:127.0.0.1:4123", "unix:/tmp/h.sock"] {
            assert_eq!(EndpointUri::parse(s).unwrap().to_string(), s);
        }
        for bad in [
            "tcp:nohost",
            "tcp::99",
            "tcp:h:notaport",
            "unix:",
            "ib:x",
            "",
        ] {
            assert!(EndpointUri::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn endpoint_list_parses_both_separators() {
        let got = parse_endpoint_list("a=tcp:127.0.0.1:1; b=unix:/tmp/x.sock , c=tcp:127.0.0.1:2,")
            .unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, "a");
        assert_eq!(got[1].1, EndpointUri::Unix(PathBuf::from("/tmp/x.sock")));
        assert!(parse_endpoint_list("justaname").is_err());
    }

    #[test]
    fn ephemeral_unix_paths_are_unique_and_short() {
        let a = ephemeral_unix_path();
        let b = ephemeral_unix_path();
        assert_ne!(a, b);
        assert!(a.as_os_str().len() < 100, "{a:?} too long for sun_path");
    }
}
