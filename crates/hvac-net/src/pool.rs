//! Reference-counted buffer pool: fixed slab classes, return-on-last-drop.
//!
//! The read hot path used to allocate (and zero) a fresh `Vec` per frame,
//! per chunk, and per reassembled read — at 256 KiB a pop that means an
//! mmap round trip through the allocator and a kernel page-zeroing pass on
//! every single read. [`BufferPool`] removes that churn: buffers come from
//! a small set of fixed **size classes** (power-of-four steps from 4 KiB to
//! 16 MiB), each class keeping a bounded free list of previously-used
//! slabs. An [`acquire`](BufferPool::acquire) pops a slab (or allocates one
//! the first time), the caller fills it and [`freeze`](PooledBuf::freeze)s
//! it into an ordinary [`Bytes`], and when the **last** `Bytes` clone
//! drops, the slab's owner `Drop` pushes it back onto its class's free list
//! — explicit return-to-pool on last drop, with no change to any `Bytes`
//! consumer. Requests larger than the biggest class fall back to a plain
//! unpooled allocation (counted, never returned).
//!
//! Ownership rules (see DESIGN.md §12):
//! - a `PooledBuf` is affine: it is either frozen (ownership moves into the
//!   returned `Bytes`) or dropped (slab returns immediately) — the type
//!   system rules out double-return;
//! - acquired contents are **unspecified** (reused slabs carry old bytes;
//!   in debug builds they are poisoned with `0xDB`): callers must fill the
//!   buffer before exposing it, which every call site does by construction
//!   (`read_exact`, `copy_from_slice`);
//! - free lists are bounded per class, so a burst can't pin unbounded
//!   memory: overflow slabs are simply freed.
//!
//! Locking: each size class has its own free-list mutex under the
//! [`classes::NET_POOL`] class — the innermost level of the lock
//! hierarchy, because acquires happen from under store-shard guards and
//! socket readers. Nothing is ever acquired while a free-list guard is
//! held.

use bytes::Bytes;
use hvac_sync::{classes, OrderedMutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Slab size classes, smallest first: power-of-four steps, 4 KiB → 16 MiB.
/// Anything larger is served unpooled.
pub const SLAB_CLASSES: &[usize] = &[
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    16 << 20,
];

/// Retained free slabs per class; overflow returns are freed instead of
/// pooled so an incast burst can't pin `classes × burst` memory forever.
const MAX_FREE_PER_CLASS: usize = 32;

/// Debug-build poison byte written over a slab when it returns to the pool.
pub const POISON_BYTE: u8 = 0xDB;

/// Cumulative pool counters (all monotonic; `in_flight` is derived).
#[derive(Debug, Default)]
struct PoolCounters {
    /// Pooled acquires (oversize requests are counted separately).
    acquires: AtomicU64,
    /// Acquires served by reusing a free-listed slab.
    pool_hits: AtomicU64,
    /// Acquires that had to allocate a fresh slab.
    fresh_allocs: AtomicU64,
    /// Slabs returned to a free list on last drop.
    returns: AtomicU64,
    /// Slabs dropped on return because their free list was full.
    overflow_frees: AtomicU64,
    /// Requests larger than the biggest class, served unpooled.
    oversize: AtomicU64,
}

/// A point-in-time snapshot of the pool's ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Pooled acquires.
    pub acquires: u64,
    /// Acquires served from a free list.
    pub pool_hits: u64,
    /// Acquires that allocated a fresh slab.
    pub fresh_allocs: u64,
    /// Slabs returned to a free list.
    pub returns: u64,
    /// Returned slabs freed because the list was full.
    pub overflow_frees: u64,
    /// Unpooled oversize allocations.
    pub oversize: u64,
}

impl PoolStats {
    /// Pooled slabs currently held by live buffers: acquires that have
    /// neither returned nor been freed on overflow. Zero means the pool is
    /// quiescent — every slab it ever handed out has come home. Saturating:
    /// the counters are loaded independently, so a snapshot racing an
    /// acquire-then-release can observe more returns than acquires and must
    /// read as quiescent, not underflow.
    pub fn in_flight(&self) -> u64 {
        self.acquires
            .saturating_sub(self.returns.saturating_add(self.overflow_frees))
    }
}

struct PoolInner {
    /// One bounded free list per size class, each under its own
    /// `NET_POOL`-class mutex (stripes of one logical lock).
    free: Vec<OrderedMutex<Vec<Box<[u8]>>>>,
    counters: PoolCounters,
}

impl PoolInner {
    /// Index of the smallest class that fits `len`, or `None` if oversize.
    fn class_of(len: usize) -> Option<usize> {
        SLAB_CLASSES.iter().position(|&c| len <= c)
    }

    fn release(&self, mut slab: Box<[u8]>, class: usize) {
        if cfg!(debug_assertions) {
            slab.fill(POISON_BYTE);
        }
        let mut free = self.free[class].lock();
        if free.len() < MAX_FREE_PER_CLASS {
            free.push(slab);
            drop(free);
            self.counters.returns.fetch_add(1, Ordering::Relaxed);
        } else {
            drop(free);
            self.counters.overflow_frees.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A shared, thread-safe slab pool. Cloning is cheap (`Arc` inside); all
/// clones draw from and return to the same free lists.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("stats", &self.stats())
            .finish()
    }
}

impl BufferPool {
    /// An empty pool (no slabs are preallocated; classes fill on demand).
    pub fn new() -> Self {
        let free = SLAB_CLASSES
            .iter()
            .map(|_| OrderedMutex::new(classes::NET_POOL, Vec::new()))
            .collect();
        Self {
            inner: Arc::new(PoolInner {
                free,
                counters: PoolCounters::default(),
            }),
        }
    }

    /// Check out a writable buffer of exactly `len` logical bytes, backed
    /// by the smallest slab class that fits (or a one-off allocation when
    /// `len` exceeds every class). Contents are unspecified — fill before
    /// freezing.
    pub fn acquire(&self, len: usize) -> PooledBuf {
        let Some(class) = PoolInner::class_of(len) else {
            self.inner.counters.oversize.fetch_add(1, Ordering::Relaxed);
            return PooledBuf {
                slab: vec![0u8; len].into_boxed_slice(),
                len,
                origin: None,
            };
        };
        let reused = self.inner.free[class].lock().pop();
        self.inner.counters.acquires.fetch_add(1, Ordering::Relaxed);
        let slab = match reused {
            Some(slab) => {
                self.inner
                    .counters
                    .pool_hits
                    .fetch_add(1, Ordering::Relaxed);
                slab
            }
            None => {
                self.inner
                    .counters
                    .fresh_allocs
                    .fetch_add(1, Ordering::Relaxed);
                vec![0u8; SLAB_CLASSES[class]].into_boxed_slice()
            }
        };
        PooledBuf {
            slab,
            len,
            origin: Some((self.inner.clone(), class)),
        }
    }

    /// Copy `data` into a pooled buffer and freeze it — the one-call form
    /// of acquire → fill → freeze used by reassembly paths.
    pub fn bytes_from_slice(&self, data: &[u8]) -> Bytes {
        let mut buf = self.acquire(data.len());
        buf.copy_from_slice(data);
        buf.freeze()
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> PoolStats {
        let c = &self.inner.counters;
        PoolStats {
            acquires: c.acquires.load(Ordering::Relaxed),
            pool_hits: c.pool_hits.load(Ordering::Relaxed),
            fresh_allocs: c.fresh_allocs.load(Ordering::Relaxed),
            returns: c.returns.load(Ordering::Relaxed),
            overflow_frees: c.overflow_frees.load(Ordering::Relaxed),
            oversize: c.oversize.load(Ordering::Relaxed),
        }
    }

    /// Slabs currently parked on free lists across all classes.
    pub fn free_slabs(&self) -> usize {
        self.inner
            .free
            .iter()
            // lockgraph: l -> NET_POOL
            .map(|l| l.lock().len())
            .sum()
    }
}

/// A checked-out pool buffer: `DerefMut` to exactly the requested length.
/// Freeze it into [`Bytes`] to share it, or drop it to return the slab
/// immediately. Either way the slab goes back to its free list exactly
/// once, when the last owner lets go.
pub struct PooledBuf {
    slab: Box<[u8]>,
    len: usize,
    /// `Some((pool, class))` for pooled slabs; `None` for oversize one-offs
    /// which are simply freed.
    origin: Option<(Arc<PoolInner>, usize)>,
}

impl PooledBuf {
    /// The logical length requested at acquire time.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Freeze into an immutable [`Bytes`] without copying. The returned
    /// `Bytes` (and every clone/slice of it) shares the slab; the last
    /// drop returns it to the pool.
    pub fn freeze(self) -> Bytes {
        Bytes::from_owner(self)
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.slab[..self.len]
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.slab[..self.len]
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.slab[..self.len]
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some((pool, class)) = self.origin.take() {
            pool.release(std::mem::take(&mut self.slab), class);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_selection_is_smallest_fit() {
        assert_eq!(PoolInner::class_of(1), Some(0));
        assert_eq!(PoolInner::class_of(4 << 10), Some(0));
        assert_eq!(PoolInner::class_of((4 << 10) + 1), Some(1));
        assert_eq!(PoolInner::class_of(16 << 20), Some(SLAB_CLASSES.len() - 1));
        assert_eq!(PoolInner::class_of((16 << 20) + 1), None);
    }

    #[test]
    fn slab_returns_on_last_drop_and_is_reused() {
        let pool = BufferPool::new();
        let mut buf = pool.acquire(100);
        buf.copy_from_slice(&[7u8; 100]);
        let b = buf.freeze();
        let clone = b.slice(10..20);
        drop(b);
        assert_eq!(pool.stats().returns, 0, "a live slice pins the slab");
        drop(clone);
        let s = pool.stats();
        assert_eq!((s.acquires, s.returns), (1, 1));
        assert_eq!(pool.free_slabs(), 1);
        // The next same-class acquire reuses the very slab that came back.
        let again = pool.acquire(50);
        assert_eq!(pool.stats().pool_hits, 1);
        drop(again);
    }

    #[test]
    fn returned_slabs_are_poisoned_in_debug_builds() {
        let pool = BufferPool::new();
        let mut buf = pool.acquire(64);
        buf.copy_from_slice(&[0xAAu8; 64]);
        drop(buf);
        // Reused slab surfaces the poison, proving the old contents are
        // gone and use-after-return reads are detectable.
        let reused = pool.acquire(64);
        if cfg!(debug_assertions) {
            assert!(reused.iter().all(|&b| b == POISON_BYTE));
        }
    }

    #[test]
    fn oversize_requests_bypass_the_pool() {
        let pool = BufferPool::new();
        let max = *SLAB_CLASSES.last().expect("classes non-empty");
        let buf = pool.acquire(max + 1);
        assert_eq!(buf.len(), max + 1);
        drop(buf);
        let s = pool.stats();
        assert_eq!((s.acquires, s.oversize, s.returns), (0, 1, 0));
        assert_eq!(pool.free_slabs(), 0);
    }

    #[test]
    fn free_lists_are_bounded() {
        let pool = BufferPool::new();
        let bufs: Vec<_> = (0..MAX_FREE_PER_CLASS + 5)
            .map(|_| pool.acquire(1024))
            .collect();
        drop(bufs);
        assert_eq!(pool.free_slabs(), MAX_FREE_PER_CLASS);
        let s = pool.stats();
        assert_eq!(s.overflow_frees, 5);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn bytes_from_slice_round_trips() {
        let pool = BufferPool::new();
        let data: Vec<u8> = (0..=255).collect();
        let b = pool.bytes_from_slice(&data);
        assert_eq!(&b[..], &data[..]);
        drop(b);
        assert_eq!(pool.stats().in_flight(), 0);
    }

    #[test]
    fn zero_length_acquire_is_fine() {
        let pool = BufferPool::new();
        let buf = pool.acquire(0);
        assert!(buf.is_empty());
        let b = buf.freeze();
        assert!(b.is_empty());
    }

    #[test]
    fn concurrent_acquire_release_quiesces() {
        let pool = BufferPool::new();
        std::thread::scope(|s| {
            for t in 0..16usize {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..200usize {
                        let len = 1 + (t * 131 + i * 17) % (512 << 10);
                        let mut buf = pool.acquire(len);
                        buf[0] = t as u8;
                        buf[len - 1] = i as u8;
                        let b = buf.freeze();
                        assert_eq!(b.len(), len);
                        assert_eq!(b[0], t as u8);
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.in_flight(), 0, "{s:?}");
        assert_eq!(s.acquires, 16 * 200);
        assert_eq!(s.pool_hits + s.fresh_allocs, s.acquires);
    }
}
