//! Length-prefixed framing for the socket transport.
//!
//! Every message on a stream socket is one *frame*:
//!
//! ```text
//! [magic u32 LE = "HVAC"] [len u32 LE] [body: len bytes]
//! ```
//!
//! The body reuses the existing `hvac-net::wire` conventions (little-endian
//! integers, `u32` length prefixes) and comes in two shapes:
//!
//! * **request** — `[kind u8 = 1][req_id u64][deadline_ms u32][payload…]`.
//!   `req_id` multiplexes concurrent in-flight calls on one connection;
//!   `deadline_ms` carries the caller's remaining per-call budget so the
//!   server can skip work whose client has certainly given up.
//! * **reply** — `[kind u8 = 2][req_id u64][flags u8][hdr_len u32][header…]
//!   [bulk…]`. Bit 0 of `flags` says whether a bulk payload follows the
//!   header — the same header/bulk split the loopback [`Reply`] models
//!   (Mercury's RPC-argument vs. bulk-transfer separation).
//!
//! The decoder is strictly *bounded-allocation*: the frame length is
//! validated against both the magic and the configured `max_frame` cap
//! **before** any buffer is sized from it, so truncated, oversized, or
//! garbage input yields a typed [`HvacError::Protocol`] (or a clean
//! end-of-stream `None`) — never a panic or an attacker-sized allocation.

use crate::fabric::Reply;
use crate::pool::BufferPool;
use bytes::{Buf, Bytes};
use hvac_types::{HvacError, Result};
use std::io::Read;

/// Frame magic: `"HVAC"` in ASCII, read as a little-endian `u32`.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"HVAC");

/// Default cap on one frame's body. Bulk replies are chunked well below
/// this by the client's `bulk_chunk` (1 MiB by default), so the cap only
/// guards against corrupt or hostile length prefixes.
pub const DEFAULT_MAX_FRAME: usize = 64 << 20;

const KIND_REQUEST: u8 = 1;
const KIND_REPLY: u8 = 2;
/// Tenant-stamped request: same layout as [`KIND_REQUEST`] with a u64 job
/// id spliced in after the deadline. Legacy (kind-1) frames decode as job 0,
/// and job-0 senders keep emitting kind 1, so the two framings interoperate
/// in both directions.
const KIND_REQUEST_JOB: u8 = 3;
const FLAG_HAS_BULK: u8 = 1;

/// A decoded request frame body.
#[derive(Debug)]
pub struct RequestFrame {
    /// Connection-local id matching the reply to its caller.
    pub req_id: u64,
    /// Remaining per-call deadline at send time, in milliseconds
    /// (saturated); lets the server drop work for long-gone callers.
    pub deadline_ms: u32,
    /// Sender's tenant identity (0 = the legacy/default namespace; always 0
    /// for kind-1 frames).
    pub job: u64,
    /// The opaque RPC payload (the protocol layer's encoded `Request`).
    pub payload: Bytes,
}

/// A decoded reply frame body.
#[derive(Debug)]
pub struct ReplyFrame {
    /// Id of the request this answers.
    pub req_id: u64,
    /// Header + optional bulk, exactly as the loopback fabric delivers it.
    pub reply: Reply,
}

fn check_body_len(len: usize, max_frame: usize) -> Result<()> {
    if len > max_frame || len > u32::MAX as usize {
        return Err(HvacError::Protocol(format!(
            "frame body of {len} bytes exceeds the {max_frame}-byte cap"
        )));
    }
    Ok(())
}

/// Frame up an opaque body: magic, length, body.
pub fn encode_frame(body: &[u8], max_frame: usize) -> Result<Vec<u8>> {
    check_body_len(body.len(), max_frame)?;
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    Ok(out)
}

/// Encode a request frame (header + body) ready to write to a stream.
/// Equivalent to [`encode_request_job`] with job 0 (the legacy framing).
pub fn encode_request(
    req_id: u64,
    deadline_ms: u32,
    payload: &[u8],
    max_frame: usize,
) -> Result<Vec<u8>> {
    encode_request_job(req_id, deadline_ms, 0, payload, max_frame)
}

/// Encode a request frame carrying the sender's tenant identity. Job 0
/// emits the legacy kind-1 layout byte-for-byte; any other job emits a
/// kind-3 frame with the id after the deadline.
pub fn encode_request_job(
    req_id: u64,
    deadline_ms: u32,
    job: u64,
    payload: &[u8],
    max_frame: usize,
) -> Result<Vec<u8>> {
    let mut body = Vec::with_capacity(21 + payload.len());
    body.push(if job == 0 {
        KIND_REQUEST
    } else {
        KIND_REQUEST_JOB
    });
    body.extend_from_slice(&req_id.to_le_bytes());
    body.extend_from_slice(&deadline_ms.to_le_bytes());
    if job != 0 {
        body.extend_from_slice(&job.to_le_bytes());
    }
    body.extend_from_slice(payload);
    encode_frame(&body, max_frame)
}

/// Validate a reply frame's sizes and return its total on-wire length.
fn checked_reply_frame_len(reply: &Reply, max_frame: usize) -> Result<usize> {
    if u32::try_from(reply.header.len()).is_err() {
        return Err(HvacError::Protocol(format!(
            "reply header of {} bytes exceeds u32 wire prefix",
            reply.header.len()
        )));
    }
    let bulk_len = reply.bulk.as_ref().map_or(0, Bytes::len);
    let body_len = 14 + reply.header.len() + bulk_len;
    check_body_len(body_len, max_frame)?;
    Ok(8 + body_len)
}

/// Write one reply frame into `out`, whose length must be exactly the
/// value returned by [`checked_reply_frame_len`].
fn fill_reply_frame(out: &mut [u8], req_id: u64, reply: &Reply) {
    let body_len = out.len() - 8;
    out[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
    out[4..8].copy_from_slice(&(body_len as u32).to_le_bytes());
    out[8] = KIND_REPLY;
    out[9..17].copy_from_slice(&req_id.to_le_bytes());
    out[17] = if reply.bulk.is_some() {
        FLAG_HAS_BULK
    } else {
        0
    };
    out[18..22].copy_from_slice(&(reply.header.len() as u32).to_le_bytes());
    let bulk_at = 22 + reply.header.len();
    out[22..bulk_at].copy_from_slice(&reply.header);
    if let Some(b) = &reply.bulk {
        out[bulk_at..].copy_from_slice(b);
    }
}

/// Encode a reply frame (header + body) ready to write to a stream, in a
/// single allocation with no intermediate copies.
pub fn encode_reply(req_id: u64, reply: &Reply, max_frame: usize) -> Result<Vec<u8>> {
    let total = checked_reply_frame_len(reply, max_frame)?;
    let mut out = vec![0u8; total];
    fill_reply_frame(&mut out, req_id, reply);
    Ok(out)
}

/// Encode a reply frame directly into one buffer — pooled when a
/// [`BufferPool`] is supplied, plain otherwise. Unlike the legacy
/// body-then-frame path this writes header, prefix, and bulk exactly once
/// into a single allocation (reused across replies when pooled), which is
/// the server's per-reply copy the zero-copy plane eliminates.
pub fn encode_reply_pooled(
    req_id: u64,
    reply: &Reply,
    max_frame: usize,
    pool: Option<&BufferPool>,
) -> Result<Bytes> {
    match pool {
        Some(pool) => {
            let total = checked_reply_frame_len(reply, max_frame)?;
            let mut buf = pool.acquire(total);
            fill_reply_frame(&mut buf, req_id, reply);
            Ok(buf.freeze())
        }
        None => Ok(Bytes::from(encode_reply(req_id, reply, max_frame)?)),
    }
}

/// Decode a request frame body (the bytes after the 8-byte frame header).
/// Accepts both the legacy kind-1 layout (job 0) and the tenant-stamped
/// kind-3 layout.
pub fn decode_request(mut body: Bytes) -> Result<RequestFrame> {
    let kind = crate::wire::get_u8(&mut body)?;
    if kind != KIND_REQUEST && kind != KIND_REQUEST_JOB {
        return Err(HvacError::Protocol(format!(
            "expected request frame (kind {KIND_REQUEST} or {KIND_REQUEST_JOB}), got kind {kind}"
        )));
    }
    let req_id = crate::wire::get_u64(&mut body)?;
    let deadline_ms = crate::wire::get_u32(&mut body)?;
    let job = if kind == KIND_REQUEST_JOB {
        crate::wire::get_u64(&mut body)?
    } else {
        0
    };
    Ok(RequestFrame {
        req_id,
        deadline_ms,
        job,
        payload: body,
    })
}

/// Decode a reply frame body (the bytes after the 8-byte frame header).
pub fn decode_reply(mut body: Bytes) -> Result<ReplyFrame> {
    let kind = crate::wire::get_u8(&mut body)?;
    if kind != KIND_REPLY {
        return Err(HvacError::Protocol(format!(
            "expected reply frame (kind {KIND_REPLY}), got kind {kind}"
        )));
    }
    let req_id = crate::wire::get_u64(&mut body)?;
    let flags = crate::wire::get_u8(&mut body)?;
    if flags & !FLAG_HAS_BULK != 0 {
        return Err(HvacError::Protocol(format!(
            "unknown reply flags {flags:#04x}"
        )));
    }
    let hdr_len = crate::wire::get_u32(&mut body)? as usize;
    if body.remaining() < hdr_len {
        return Err(HvacError::Protocol(format!(
            "truncated reply header: want {hdr_len}, have {}",
            body.remaining()
        )));
    }
    let header = body.split_to(hdr_len);
    let bulk = if flags & FLAG_HAS_BULK != 0 {
        Some(body)
    } else if body.is_empty() {
        None
    } else {
        return Err(HvacError::Protocol(format!(
            "{} trailing bytes after bulk-less reply",
            body.len()
        )));
    };
    Ok(ReplyFrame {
        req_id,
        reply: Reply { header, bulk },
    })
}

/// Read one frame body off a stream.
///
/// Returns `Ok(None)` on a clean end-of-stream *at a frame boundary* (the
/// peer closed between messages); `Err(Protocol)` on a bad magic, an
/// over-cap length, or a stream that ends mid-frame; and `Err(Io)` for
/// transport-level failures. The body buffer is allocated only after the
/// declared length passes both the magic check and the `max_frame` cap.
pub fn read_frame<R: Read>(r: &mut R, max_frame: usize) -> Result<Option<Bytes>> {
    read_frame_pooled(r, max_frame, None)
}

/// [`read_frame`] with an optional [`BufferPool`]: the body lands in a
/// pooled slab (no per-frame malloc + zero-fill) that returns to the pool
/// when the last `Bytes` referencing the frame — the demuxed reply header,
/// its bulk slice, or the request payload — is dropped.
pub fn read_frame_pooled<R: Read>(
    r: &mut R,
    max_frame: usize,
    pool: Option<&BufferPool>,
) -> Result<Option<Bytes>> {
    let mut header = [0u8; 8];
    let mut filled = 0usize;
    while filled < header.len() {
        let n = match r.read(&mut header[filled..]) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(map_read_err(e)),
        };
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(HvacError::Protocol(format!(
                "stream ended {filled} bytes into a frame header"
            )));
        }
        filled += n;
    }
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if magic != FRAME_MAGIC {
        return Err(HvacError::Protocol(format!(
            "bad frame magic {magic:#010x} (expected {FRAME_MAGIC:#010x})"
        )));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    check_body_len(len, max_frame)?;
    let map_body_err = |e: std::io::Error| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            HvacError::Protocol(format!("stream ended inside a {len}-byte frame body"))
        } else {
            map_read_err(e)
        }
    };
    match pool {
        Some(pool) => {
            let mut body = pool.acquire(len);
            r.read_exact(&mut body).map_err(map_body_err)?;
            Ok(Some(body.freeze()))
        }
        None => {
            let mut body = vec![0u8; len];
            r.read_exact(&mut body).map_err(map_body_err)?;
            Ok(Some(Bytes::from(body)))
        }
    }
}

fn map_read_err(e: std::io::Error) -> HvacError {
    HvacError::Io(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_frame_round_trip() {
        let frame = encode_request(42, 1500, b"payload", DEFAULT_MAX_FRAME).unwrap();
        let body = read_frame(&mut Cursor::new(&frame), DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        let req = decode_request(body).unwrap();
        assert_eq!(req.req_id, 42);
        assert_eq!(req.deadline_ms, 1500);
        assert_eq!(&req.payload[..], b"payload");
    }

    #[test]
    fn cross_version_framing_legacy_and_tenant_stamped_interoperate() {
        // Old sender → new decoder: a legacy kind-1 frame decodes as job 0.
        let legacy = encode_request(42, 1500, b"payload", DEFAULT_MAX_FRAME).unwrap();
        let body = read_frame(&mut Cursor::new(&legacy), DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        let req = decode_request(body).unwrap();
        assert_eq!((req.req_id, req.deadline_ms, req.job), (42, 1500, 0));
        assert_eq!(&req.payload[..], b"payload");

        // New sender with job 0 → old decoder: byte-identical to legacy, so
        // a pre-tenancy peer parses it unchanged.
        let job0 = encode_request_job(42, 1500, 0, b"payload", DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(job0, legacy, "job 0 must stay on the legacy wire format");

        // New sender with a real tenant → new decoder: job rides the frame.
        let stamped = encode_request_job(42, 1500, 7, b"payload", DEFAULT_MAX_FRAME).unwrap();
        assert_ne!(stamped, legacy);
        let body = read_frame(&mut Cursor::new(&stamped), DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        let req = decode_request(body).unwrap();
        assert_eq!((req.req_id, req.deadline_ms, req.job), (42, 1500, 7));
        assert_eq!(&req.payload[..], b"payload");
    }

    #[test]
    fn reply_frame_round_trip_with_and_without_bulk() {
        for bulk in [None, Some(Bytes::from(vec![7u8; 4096]))] {
            let reply = Reply {
                header: Bytes::from_static(b"hdr"),
                bulk: bulk.clone(),
            };
            let frame = encode_reply(9, &reply, DEFAULT_MAX_FRAME).unwrap();
            let body = read_frame(&mut Cursor::new(&frame), DEFAULT_MAX_FRAME)
                .unwrap()
                .unwrap();
            let decoded = decode_reply(body).unwrap();
            assert_eq!(decoded.req_id, 9);
            assert_eq!(&decoded.reply.header[..], b"hdr");
            assert_eq!(decoded.reply.bulk, bulk);
        }
    }

    #[test]
    fn clean_eof_is_none_midframe_eof_is_protocol() {
        let frame = encode_request(1, 0, b"x", DEFAULT_MAX_FRAME).unwrap();
        // Clean EOF at a boundary.
        assert!(read_frame(&mut Cursor::new(&[][..]), DEFAULT_MAX_FRAME)
            .unwrap()
            .is_none());
        // Every strict prefix of a valid frame is a Protocol error.
        for cut in 1..frame.len() {
            let err = read_frame(&mut Cursor::new(&frame[..cut]), DEFAULT_MAX_FRAME).unwrap_err();
            assert!(
                matches!(err, HvacError::Protocol(_)),
                "cut={cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_oversized_length_are_typed_errors() {
        let mut junk = encode_request(1, 0, b"x", DEFAULT_MAX_FRAME).unwrap();
        junk[0] ^= 0xff;
        assert!(matches!(
            read_frame(&mut Cursor::new(&junk), DEFAULT_MAX_FRAME),
            Err(HvacError::Protocol(_))
        ));

        // A hostile length prefix must be rejected before any allocation.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&hostile), 1024),
            Err(HvacError::Protocol(_))
        ));
    }

    #[test]
    fn pooled_read_and_encode_round_trip_and_quiesce() {
        let pool = BufferPool::new();
        let reply = Reply {
            header: Bytes::from_static(b"hdr"),
            bulk: Some(Bytes::from(vec![3u8; 8192])),
        };
        let frame = encode_reply_pooled(77, &reply, DEFAULT_MAX_FRAME, Some(&pool)).unwrap();
        // The pooled encoding is byte-identical to the legacy Vec path.
        assert_eq!(
            &frame[..],
            &encode_reply(77, &reply, DEFAULT_MAX_FRAME).unwrap()[..]
        );
        let body = read_frame_pooled(
            &mut Cursor::new(frame.to_vec()),
            DEFAULT_MAX_FRAME,
            Some(&pool),
        )
        .unwrap()
        .unwrap();
        let decoded = decode_reply(body).unwrap();
        assert_eq!(decoded.req_id, 77);
        assert_eq!(&decoded.reply.header[..], b"hdr");
        let bulk = decoded.reply.bulk.unwrap();
        assert_eq!(bulk.len(), 8192);
        // Header and bulk are zero-copy slices of one pooled frame slab;
        // dropping the last of them returns the slab.
        drop(frame);
        drop(decoded.reply.header);
        assert_eq!(pool.stats().in_flight(), 1, "bulk still pins the frame");
        drop(bulk);
        assert_eq!(pool.stats().in_flight(), 0);
    }

    #[test]
    fn oversized_body_refuses_to_encode() {
        let body = vec![0u8; 100];
        assert!(encode_frame(&body, 99).is_err());
        assert!(encode_frame(&body, 100).is_ok());
    }

    #[test]
    fn wrong_kind_and_unknown_flags_are_rejected() {
        let req = encode_request(5, 0, b"p", DEFAULT_MAX_FRAME).unwrap();
        let body = read_frame(&mut Cursor::new(&req), DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert!(matches!(decode_reply(body), Err(HvacError::Protocol(_))));

        let reply = Reply {
            header: Bytes::from_static(b"h"),
            bulk: None,
        };
        let rep = encode_reply(5, &reply, DEFAULT_MAX_FRAME).unwrap();
        let body = read_frame(&mut Cursor::new(&rep), DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert!(matches!(decode_request(body), Err(HvacError::Protocol(_))));
    }
}
