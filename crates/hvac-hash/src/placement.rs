//! Placement algorithms: map a [`FileId`] to its home server (and, for the
//! fail-over extension, to an ordered replica set).
//!
//! The paper's scheme (§III-E) is plain modulo hashing: "file cache locations
//! are determined using the file path and job node allocation". The
//! alternatives here serve the ablation benches and the replication/fail-over
//! future work of §III-H: jump consistent hashing and the ring minimize data
//! movement when the allocation shrinks/grows; rendezvous and straw2 give
//! statistically independent replica ranks (straw2 additionally supports
//! weighted servers, as CRUSH does).

//! **View-aware placement.** The slot-based entry points above take a bare
//! `n_servers` and predate elastic membership. [`Placement::home_in_view`] /
//! [`Placement::replicas_in_view`] resolve against an epoch-versioned
//! [`ClusterView`] instead. The default implementations map slots onto the
//! view's canonical member list — correct, but full-churn when a *middle*
//! member leaves (every later slot shifts). [`RendezvousPlacement`] and
//! [`RingPlacement`] override them to hash each member's stable *identity*
//! (`(node, instance)`), so one join/leave moves only ~`1/n` of keys in
//! either direction; [`moved_fraction`] measures that churn empirically.

use crate::pathhash::mix64;
use hvac_sync::{classes, OrderedMutex};
use hvac_types::{ClusterView, FileId, PlacementKind, ServerId};
use std::collections::HashMap;
use std::sync::Arc;

/// A materialized ring: sorted `(point, server)` pairs.
type Ring = Arc<Vec<(u64, u32)>>;

/// A materialized identity ring: sorted `(point, member)` pairs for one
/// membership (keyed by [`ClusterView::membership_signature`]).
type IdRing = Arc<Vec<(u64, ServerId)>>;

/// Stable 64-bit identity of a server for view-aware hashing: survives
/// other members joining or leaving, unlike a dense slot index.
#[inline]
fn identity_key(sid: ServerId) -> u64 {
    (u64::from(sid.node.0) << 32) | u64::from(sid.instance)
}

/// A deterministic mapping from file identity to server index.
///
/// Implementations must be pure functions of `(file, n_servers)` (plus
/// construction-time parameters): every client in the job computes the same
/// answer with no coordination, which is what removes the metadata service.
pub trait Placement: Send + Sync {
    /// Short identifier for reports and benches.
    fn name(&self) -> &'static str;

    /// Index of the home server in `0..n_servers`.
    ///
    /// # Panics
    /// Implementations may panic if `n_servers == 0`.
    fn home(&self, file: FileId, n_servers: usize) -> usize;

    /// Ordered, duplicate-free list of `k.min(n_servers)` replica holders.
    /// The first entry is the home server; later entries are fail-over
    /// targets in preference order.
    fn replicas(&self, file: FileId, n_servers: usize, k: usize) -> Vec<usize> {
        let k = k.min(n_servers);
        let mut out = Vec::with_capacity(k);
        let home = self.home(file, n_servers);
        out.push(home);
        // Generic fallback: deterministic salted re-draws.
        let mut salt = 1u64;
        while out.len() < k {
            let candidate = self.home(FileId(mix64(file.0 ^ salt)), n_servers);
            if !out.contains(&candidate) {
                out.push(candidate);
            }
            salt += 1;
        }
        out
    }

    /// Home server resolved through a membership [`ClusterView`].
    ///
    /// Default: slot-mapped onto the view's canonical member list. Correct
    /// for any view, but a mid-list leave shifts every later slot (full
    /// churn). Identity-hashing placements override this for bounded churn.
    fn home_in_view(&self, file: FileId, view: &ClusterView) -> ServerId {
        view.server_at(self.home(file, view.n_servers()))
    }

    /// Ordered, duplicate-free replica holders resolved through a
    /// [`ClusterView`]; first entry is [`Placement::home_in_view`].
    fn replicas_in_view(&self, file: FileId, view: &ClusterView, k: usize) -> Vec<ServerId> {
        self.replicas(file, view.n_servers(), k)
            .into_iter()
            .map(|slot| view.server_at(slot))
            .collect()
    }
}

/// Fraction of sampled keys whose [`Placement::home_in_view`] differs
/// between two views — the empirical churn of a membership change. A
/// minimal-churn placement moves ~`removed+added / n` of keys; a slot-mapped
/// one can move nearly all of them.
pub fn moved_fraction(
    placement: &dyn Placement,
    old_view: &ClusterView,
    new_view: &ClusterView,
    samples: u64,
) -> f64 {
    let samples = samples.max(1);
    let moved = (0..samples)
        .filter(|&i| {
            let f = FileId(mix64(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5eed));
            placement.home_in_view(f, old_view) != placement.home_in_view(f, new_view)
        })
        .count();
    moved as f64 / samples as f64
}

/// The paper's scheme: `hash(path) % n_servers`.
///
/// Replicas are the cyclically-next servers, which keeps fail-over targets
/// trivially computable (and, with node-major server enumeration, on
/// *different nodes* whenever `instances_per_node == 1`).
///
/// **Full-churn under membership change** (documented, deliberate): modulo
/// placement keeps the paper's launch-time semantics and inherits the
/// slot-mapped view default, so a join or leave remaps `(n-1)/n` of all
/// keys. Use `Ring`/`Rendezvous` when the allocation is elastic.
#[derive(Debug, Default, Clone, Copy)]
pub struct ModuloPlacement;

impl Placement for ModuloPlacement {
    fn name(&self) -> &'static str {
        "modulo"
    }

    #[inline]
    fn home(&self, file: FileId, n_servers: usize) -> usize {
        assert!(n_servers > 0, "placement over zero servers");
        (file.0 % n_servers as u64) as usize
    }

    fn replicas(&self, file: FileId, n_servers: usize, k: usize) -> Vec<usize> {
        let k = k.min(n_servers);
        let home = self.home(file, n_servers);
        (0..k).map(|i| (home + i) % n_servers).collect()
    }
}

/// Jump consistent hash (Lamping & Veach, 2014).
///
/// Moves only `1/(n+1)` of keys when a server is appended — attractive for
/// elastic allocations.
#[derive(Debug, Default, Clone, Copy)]
pub struct JumpPlacement;

/// The jump-consistent-hash kernel.
#[inline]
fn jump_hash(mut key: u64, n_buckets: u64) -> u64 {
    assert!(n_buckets > 0);
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < n_buckets as i64 {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        let shifted = ((key >> 33) + 1) as f64;
        j = (((b + 1) as f64) * ((1u64 << 31) as f64 / shifted)) as i64;
    }
    b as u64
}

impl Placement for JumpPlacement {
    fn name(&self) -> &'static str {
        "jump"
    }

    #[inline]
    fn home(&self, file: FileId, n_servers: usize) -> usize {
        jump_hash(file.0, n_servers as u64) as usize
    }
}

/// Rendezvous (highest-random-weight) hashing: the home is the server with
/// the largest `hash(file, server)`. Replica ranking falls out naturally as
/// the top-k weights, giving independent fail-over targets.
#[derive(Debug, Default, Clone, Copy)]
pub struct RendezvousPlacement;

#[inline]
fn hrw_weight(file: FileId, server: usize) -> u64 {
    mix64(file.0 ^ mix64(0x9e37_79b9_7f4a_7c15 ^ server as u64))
}

/// HRW weight over a stable member identity rather than a slot index: a
/// member's weight for a file never changes as others come and go, which is
/// exactly the rendezvous minimal-churn property.
#[inline]
fn hrw_weight_id(file: FileId, sid: ServerId) -> u64 {
    mix64(file.0 ^ mix64(0x9e37_79b9_7f4a_7c15 ^ mix64(identity_key(sid))))
}

impl Placement for RendezvousPlacement {
    fn name(&self) -> &'static str {
        "rendezvous"
    }

    fn home(&self, file: FileId, n_servers: usize) -> usize {
        assert!(n_servers > 0, "placement over zero servers");
        (0..n_servers)
            .max_by_key(|&s| hrw_weight(file, s))
            .unwrap_or(0)
    }

    fn replicas(&self, file: FileId, n_servers: usize, k: usize) -> Vec<usize> {
        let k = k.min(n_servers);
        let mut weighted: Vec<(u64, usize)> =
            (0..n_servers).map(|s| (hrw_weight(file, s), s)).collect();
        weighted.sort_unstable_by(|a, b| b.cmp(a));
        weighted.truncate(k);
        weighted.into_iter().map(|(_, s)| s).collect()
    }

    fn home_in_view(&self, file: FileId, view: &ClusterView) -> ServerId {
        view.servers()
            .iter()
            .copied()
            .max_by_key(|&sid| hrw_weight_id(file, sid))
            .unwrap_or_else(|| view.server_at(0))
    }

    fn replicas_in_view(&self, file: FileId, view: &ClusterView, k: usize) -> Vec<ServerId> {
        let k = k.min(view.n_servers());
        let mut weighted: Vec<(u64, ServerId)> = view
            .servers()
            .iter()
            .map(|&sid| (hrw_weight_id(file, sid), sid))
            .collect();
        weighted.sort_unstable_by(|a, b| b.cmp(a));
        weighted.truncate(k);
        weighted.into_iter().map(|(_, sid)| sid).collect()
    }
}

/// Consistent-hash ring with virtual nodes.
///
/// The ring for a given server count is built once and memoized (placement
/// runs on every `open`, so rebuilding per call would dominate).
#[derive(Debug)]
pub struct RingPlacement {
    vnodes_per_server: u32,
    rings: OrderedMutex<HashMap<usize, Ring>>,
    // Identity rings for view-aware placement, one per distinct membership
    // (keyed by membership signature, so epoch-only changes share a ring).
    id_rings: OrderedMutex<HashMap<u64, IdRing>>,
}

impl Clone for RingPlacement {
    fn clone(&self) -> Self {
        Self::new(self.vnodes_per_server)
    }
}

impl RingPlacement {
    /// A ring with `vnodes_per_server` virtual nodes per server (64–256 is
    /// typical; more vnodes = better balance, larger ring).
    pub fn new(vnodes_per_server: u32) -> Self {
        Self {
            vnodes_per_server: vnodes_per_server.max(1),
            rings: OrderedMutex::new(classes::HASH_RINGS, HashMap::new()),
            id_rings: OrderedMutex::new(classes::HASH_RINGS, HashMap::new()),
        }
    }

    fn ring_for(&self, n_servers: usize) -> Ring {
        let mut rings = self.rings.lock();
        rings
            .entry(n_servers)
            .or_insert_with(|| {
                let mut ring = Vec::with_capacity(n_servers * self.vnodes_per_server as usize);
                for s in 0..n_servers as u32 {
                    for v in 0..self.vnodes_per_server {
                        let point = mix64(((s as u64) << 32) ^ v as u64 ^ 0xabcd_ef01);
                        ring.push((point, s));
                    }
                }
                ring.sort_unstable();
                Arc::new(ring)
            })
            .clone()
    }

    /// Identity ring for one membership: vnode points hash `(node, instance)`
    /// rather than a slot index, so a member's arc of the ring is unaffected
    /// by *other* members joining or leaving.
    fn id_ring_for(&self, view: &ClusterView) -> IdRing {
        let mut rings = self.id_rings.lock();
        rings
            .entry(view.membership_signature())
            .or_insert_with(|| {
                let mut ring =
                    Vec::with_capacity(view.n_servers() * self.vnodes_per_server as usize);
                for &sid in view.servers() {
                    let base = mix64(identity_key(sid) ^ 0xabcd_ef01);
                    for v in 0..self.vnodes_per_server {
                        ring.push((mix64(base ^ u64::from(v)), sid));
                    }
                }
                ring.sort_unstable();
                Arc::new(ring)
            })
            .clone()
    }
}

impl Default for RingPlacement {
    fn default() -> Self {
        Self::new(128)
    }
}

impl Placement for RingPlacement {
    fn name(&self) -> &'static str {
        "ring"
    }

    fn home(&self, file: FileId, n_servers: usize) -> usize {
        assert!(n_servers > 0, "placement over zero servers");
        let ring = self.ring_for(n_servers);
        let idx = ring.partition_point(|&(p, _)| p < file.0);
        let idx = if idx == ring.len() { 0 } else { idx };
        ring[idx].1 as usize
    }

    fn replicas(&self, file: FileId, n_servers: usize, k: usize) -> Vec<usize> {
        let k = k.min(n_servers);
        let ring = self.ring_for(n_servers);
        let start = ring.partition_point(|&(p, _)| p < file.0);
        let mut out = Vec::with_capacity(k);
        for off in 0..ring.len() {
            let (_, s) = ring[(start + off) % ring.len()];
            let s = s as usize;
            if !out.contains(&s) {
                out.push(s);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    fn home_in_view(&self, file: FileId, view: &ClusterView) -> ServerId {
        let ring = self.id_ring_for(view);
        let idx = ring.partition_point(|&(p, _)| p < file.0);
        let idx = if idx == ring.len() { 0 } else { idx };
        ring[idx].1
    }

    fn replicas_in_view(&self, file: FileId, view: &ClusterView, k: usize) -> Vec<ServerId> {
        let k = k.min(view.n_servers());
        let ring = self.id_ring_for(view);
        let start = ring.partition_point(|&(p, _)| p < file.0);
        let mut out = Vec::with_capacity(k);
        for off in 0..ring.len() {
            let (_, sid) = ring[(start + off) % ring.len()];
            if !out.contains(&sid) {
                out.push(sid);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }
}

/// CRUSH-style straw2 selection with optional per-server weights.
///
/// Each server draws a "straw" of length `ln(u) / weight` with `u` a
/// deterministic uniform draw from `(0, 1]`; the longest (least negative)
/// straw wins. With equal weights this is rendezvous hashing; with unequal
/// weights the win probability is exactly proportional to weight, which is
/// what CephFS relies on (§III-E cites CRUSH).
#[derive(Debug, Clone, Default)]
pub struct Straw2Placement {
    weights: Option<Vec<f64>>,
}

impl Straw2Placement {
    /// Equal-weight straw2.
    pub fn new() -> Self {
        Self { weights: None }
    }

    /// Weighted straw2; `weights[s]` is the relative capacity of server `s`.
    /// Servers beyond the weight vector default to weight 1.0.
    pub fn with_weights(weights: Vec<f64>) -> Self {
        Self {
            weights: Some(weights),
        }
    }

    #[inline]
    fn weight(&self, server: usize) -> f64 {
        match &self.weights {
            Some(w) => *w.get(server).unwrap_or(&1.0),
            None => 1.0,
        }
    }

    #[inline]
    fn straw(&self, file: FileId, server: usize) -> f64 {
        let w = self.weight(server);
        if w <= 0.0 {
            return f64::NEG_INFINITY;
        }
        // u in (0, 1]: map the 64-bit draw into the unit interval, avoiding 0.
        let draw = hrw_weight(file, server);
        let u = (draw as f64 + 1.0) / (u64::MAX as f64 + 2.0);
        u.ln() / w
    }
}

impl Placement for Straw2Placement {
    fn name(&self) -> &'static str {
        "straw2"
    }

    fn home(&self, file: FileId, n_servers: usize) -> usize {
        assert!(n_servers > 0, "placement over zero servers");
        let mut best = 0usize;
        let mut best_straw = f64::NEG_INFINITY;
        for s in 0..n_servers {
            let st = self.straw(file, s);
            if st > best_straw {
                best_straw = st;
                best = s;
            }
        }
        best
    }

    fn replicas(&self, file: FileId, n_servers: usize, k: usize) -> Vec<usize> {
        let k = k.min(n_servers);
        let mut strs: Vec<(f64, usize)> =
            (0..n_servers).map(|s| (self.straw(file, s), s)).collect();
        strs.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(b.1.cmp(&a.1)));
        strs.truncate(k);
        strs.into_iter().map(|(_, s)| s).collect()
    }
}

/// Construct the placement implementation selected by a
/// [`PlacementKind`].
pub fn make_placement(kind: PlacementKind) -> Box<dyn Placement> {
    match kind {
        PlacementKind::Modulo => Box::new(ModuloPlacement),
        PlacementKind::Jump => Box::new(JumpPlacement),
        PlacementKind::Rendezvous => Box::new(RendezvousPlacement),
        PlacementKind::Ring => Box::new(RingPlacement::default()),
        PlacementKind::Straw2 => Box::new(Straw2Placement::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathhash::hash_path;

    fn all_placements() -> Vec<Box<dyn Placement>> {
        vec![
            Box::new(ModuloPlacement),
            Box::new(JumpPlacement),
            Box::new(RendezvousPlacement),
            Box::new(RingPlacement::default()),
            Box::new(Straw2Placement::new()),
        ]
    }

    #[test]
    fn home_is_in_range_and_deterministic() {
        for p in all_placements() {
            for n in [1usize, 2, 7, 64, 1024] {
                for i in 0..200u64 {
                    let f = hash_path(format!("/d/{i}"));
                    let h = p.home(f, n);
                    assert!(h < n, "{} out of range", p.name());
                    assert_eq!(h, p.home(f, n), "{} not deterministic", p.name());
                }
            }
        }
    }

    #[test]
    fn replicas_are_distinct_prefixed_by_home() {
        for p in all_placements() {
            for n in [1usize, 3, 16, 128] {
                for k in [1usize, 2, 3, 5, 200] {
                    let f = hash_path(format!("/data/sample-{n}-{k}"));
                    let reps = p.replicas(f, n, k);
                    assert_eq!(reps.len(), k.min(n), "{}", p.name());
                    assert_eq!(reps[0], p.home(f, n), "{}", p.name());
                    let mut sorted = reps.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(sorted.len(), reps.len(), "{} duplicates", p.name());
                    assert!(reps.iter().all(|&r| r < n), "{}", p.name());
                }
            }
        }
    }

    #[test]
    fn modulo_replicas_are_cyclic_successors() {
        let f = FileId(10);
        assert_eq!(ModuloPlacement.replicas(f, 4, 3), vec![2, 3, 0]);
    }

    #[test]
    fn jump_hash_reference_values() {
        // Cross-checked against the published algorithm's behaviour:
        // bucket(key, 1) == 0 always; growing n only ever moves keys to the
        // *new* bucket.
        for key in 0..500u64 {
            assert_eq!(jump_hash(key, 1), 0);
        }
    }

    #[test]
    fn jump_is_monotone_under_growth() {
        // Adding a server must never move a key between existing servers.
        for key in 0..2_000u64 {
            let mut prev = jump_hash(key, 1);
            for n in 2..40u64 {
                let cur = jump_hash(key, n);
                assert!(
                    cur == prev || cur == n - 1,
                    "key {key} moved {prev}->{cur} at n={n}"
                );
                prev = cur;
            }
        }
    }

    #[test]
    fn placements_are_reasonably_balanced() {
        let n_servers = 32usize;
        let n_files = 32_000usize;
        for p in all_placements() {
            let mut counts = vec![0usize; n_servers];
            for i in 0..n_files {
                let f = hash_path(format!("/gpfs/train/img_{i:08}.jpg"));
                counts[p.home(f, n_servers)] += 1;
            }
            let ideal = n_files as f64 / n_servers as f64;
            let max = *counts.iter().max().unwrap() as f64;
            let min = *counts.iter().min().unwrap() as f64;
            assert!(
                max / ideal < 1.35 && min / ideal > 0.65,
                "{} imbalanced: min={min} max={max} ideal={ideal}",
                p.name()
            );
        }
    }

    #[test]
    fn straw2_respects_weights() {
        // Server 0 has twice the weight; it should win roughly twice as often.
        let p = Straw2Placement::with_weights(vec![2.0, 1.0, 1.0, 1.0]);
        let mut counts = [0usize; 4];
        let trials = 40_000;
        for i in 0..trials {
            counts[p.home(FileId(mix64(i as u64)), 4)] += 1;
        }
        let share0 = counts[0] as f64 / trials as f64;
        assert!(
            (share0 - 0.4).abs() < 0.03,
            "weighted share was {share0}, expected ~0.40"
        );
        for &c in &counts[1..] {
            let share = c as f64 / trials as f64;
            assert!((share - 0.2).abs() < 0.03, "unit share was {share}");
        }
    }

    #[test]
    fn straw2_zero_weight_server_never_selected() {
        let p = Straw2Placement::with_weights(vec![1.0, 0.0, 1.0]);
        for i in 0..5_000u64 {
            assert_ne!(p.home(FileId(mix64(i)), 3), 1);
        }
    }

    #[test]
    fn ring_more_vnodes_is_better_balanced() {
        let sparse = RingPlacement::new(8);
        let dense = RingPlacement::new(256);
        let n_servers = 16;
        let n_files = 16_000u64;
        let imbalance = |p: &RingPlacement| {
            let mut counts = vec![0usize; n_servers];
            for i in 0..n_files {
                counts[p.home(FileId(mix64(i)), n_servers)] += 1;
            }
            let ideal = n_files as f64 / n_servers as f64;
            counts
                .iter()
                .map(|&c| (c as f64 - ideal).abs())
                .fold(0.0f64, f64::max)
                / ideal
        };
        assert!(imbalance(&dense) < imbalance(&sparse));
    }

    #[test]
    fn make_placement_covers_all_kinds() {
        for kind in [
            PlacementKind::Modulo,
            PlacementKind::Jump,
            PlacementKind::Rendezvous,
            PlacementKind::Ring,
            PlacementKind::Straw2,
        ] {
            let p = make_placement(kind);
            assert!(p.home(FileId(42), 8) < 8);
        }
    }

    #[test]
    fn single_server_degenerate_case() {
        for p in all_placements() {
            assert_eq!(p.home(FileId(123), 1), 0);
            assert_eq!(p.replicas(FileId(123), 1, 3), vec![0]);
        }
    }
}
