//! Stable 64-bit path hashing.
//!
//! The hash must be (a) identical on every client without coordination,
//! (b) well distributed even for highly regular inputs (dataset paths differ
//! only in a numeric suffix), and (c) cheap, because it runs on every `open`.
//! FNV-1a alone fails (b) — sequential filenames produce clustered hashes —
//! so we pass the FNV state through a SplitMix64-style avalanche finalizer.

use hvac_types::FileId;
use std::path::Path;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// SplitMix64 avalanche finalizer: every input bit affects every output bit.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Hash an arbitrary byte string to a well-distributed 64-bit value.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    mix64(h)
}

/// Hash a file path into the [`FileId`] that drives placement.
#[inline]
pub fn hash_path<P: AsRef<Path>>(path: P) -> FileId {
    FileId(hash_bytes(path.as_ref().as_os_str().as_encoded_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            hash_path("/gpfs/data/img_000001.jpg"),
            hash_path("/gpfs/data/img_000001.jpg")
        );
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
    }

    #[test]
    fn distinct_paths_differ() {
        assert_ne!(hash_path("/a"), hash_path("/b"));
        assert_ne!(hash_path("/data/x1"), hash_path("/data/x2"));
        // order sensitivity
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ba"));
    }

    #[test]
    fn empty_input_is_defined() {
        // The empty path must not panic and must be stable.
        assert_eq!(hash_bytes(b""), hash_bytes(b""));
    }

    #[test]
    fn sequential_names_spread_across_buckets() {
        // The property that makes modulo placement balanced in Fig. 15:
        // consecutive dataset filenames should land uniformly over servers.
        let n_servers = 64u64;
        let n_files = 64_000;
        let mut counts = vec![0u32; n_servers as usize];
        for i in 0..n_files {
            let h = hash_path(format!("/gpfs/alpine/imagenet21k/train/img_{i:08}.jpg"));
            counts[(h.0 % n_servers) as usize] += 1;
        }
        let ideal = n_files as f64 / n_servers as f64;
        for (s, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - ideal).abs() / ideal;
            assert!(dev < 0.15, "server {s} holds {c} files, ideal {ideal}");
        }
    }

    #[test]
    fn avalanche_on_single_bit_flip() {
        // Flipping one input bit should flip ~half the output bits.
        let a = hash_bytes(b"/gpfs/data/img_00000001.jpg");
        let b = hash_bytes(b"/gpfs/data/img_00000000.jpg");
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "only {flipped} bits flipped");
    }
}
