//! Stable 64-bit path hashing.
//!
//! The hash must be (a) identical on every client without coordination,
//! (b) well distributed even for highly regular inputs (dataset paths differ
//! only in a numeric suffix), and (c) cheap, because it runs on every `open`.
//! FNV-1a alone fails (b) — sequential filenames produce clustered hashes —
//! so we pass the FNV state through a SplitMix64-style avalanche finalizer.

use hvac_types::{FileId, JobId};
use std::path::{Path, PathBuf};

/// Reserved prefix under which non-default tenants' keys are namespaced.
/// Real dataset paths never start with it (it is not a plausible PFS mount),
/// so tenant keys and legacy keys can share one key space without colliding.
pub const TENANT_PREFIX: &str = "/.hvac-tenants";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// SplitMix64 avalanche finalizer: every input bit affects every output bit.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Hash an arbitrary byte string to a well-distributed 64-bit value.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    mix64(h)
}

/// Hash a file path into the [`FileId`] that drives placement.
#[inline]
pub fn hash_path<P: AsRef<Path>>(path: P) -> FileId {
    FileId(hash_bytes(path.as_ref().as_os_str().as_encoded_bytes()))
}

/// Namespace a path under a tenant. Job 0 (the legacy/default namespace)
/// leaves the path untouched, so pre-tenancy cache contents, placement and
/// wire traffic stay byte-identical; any other job prefixes the path with
/// `TENANT_PREFIX/<job>` — one key space, no collisions, and everything
/// downstream (placement, storage shards, rebalance, repair) keys on the
/// namespaced form without knowing tenants exist.
pub fn tenant_key(job: JobId, path: &Path) -> PathBuf {
    if job.is_default() {
        return path.to_path_buf();
    }
    let mut key = PathBuf::from(format!("{TENANT_PREFIX}/{}", job.0));
    match path.strip_prefix("/") {
        Ok(rel) => key.push(rel),
        Err(_) => key.push(path),
    }
    key
}

/// Inverse of [`tenant_key`]: recover `(job, raw path)` from a store key.
/// Keys outside the reserved prefix belong to the default namespace.
pub fn split_tenant_key(key: &Path) -> (JobId, PathBuf) {
    let Ok(rest) = key.strip_prefix(TENANT_PREFIX) else {
        return (JobId::DEFAULT, key.to_path_buf());
    };
    let mut comps = rest.components();
    let job = comps
        .next()
        .and_then(|c| c.as_os_str().to_str())
        .and_then(|s| s.parse::<u64>().ok());
    match job {
        Some(j) if j != 0 => (JobId(j), PathBuf::from("/").join(comps.as_path())),
        // A malformed or job-0 prefix is not one we ever generate; treat the
        // whole key as a default-namespace path rather than guessing.
        _ => (JobId::DEFAULT, key.to_path_buf()),
    }
}

/// Placement hash of a `(job, path)` pair: the [`FileId`] of the tenant key,
/// so namespaces never collide and per-tenant churn is independent.
#[inline]
pub fn hash_job_path(job: JobId, path: &Path) -> FileId {
    if job.is_default() {
        hash_path(path)
    } else {
        hash_path(tenant_key(job, path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            hash_path("/gpfs/data/img_000001.jpg"),
            hash_path("/gpfs/data/img_000001.jpg")
        );
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
    }

    #[test]
    fn distinct_paths_differ() {
        assert_ne!(hash_path("/a"), hash_path("/b"));
        assert_ne!(hash_path("/data/x1"), hash_path("/data/x2"));
        // order sensitivity
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ba"));
    }

    #[test]
    fn empty_input_is_defined() {
        // The empty path must not panic and must be stable.
        assert_eq!(hash_bytes(b""), hash_bytes(b""));
    }

    #[test]
    fn sequential_names_spread_across_buckets() {
        // The property that makes modulo placement balanced in Fig. 15:
        // consecutive dataset filenames should land uniformly over servers.
        let n_servers = 64u64;
        let n_files = 64_000;
        let mut counts = vec![0u32; n_servers as usize];
        for i in 0..n_files {
            let h = hash_path(format!("/gpfs/alpine/imagenet21k/train/img_{i:08}.jpg"));
            counts[(h.0 % n_servers) as usize] += 1;
        }
        let ideal = n_files as f64 / n_servers as f64;
        for (s, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - ideal).abs() / ideal;
            assert!(dev < 0.15, "server {s} holds {c} files, ideal {ideal}");
        }
    }

    #[test]
    fn tenant_keys_round_trip_and_keep_job0_identity() {
        let p = Path::new("/gpfs/set/sample_0001.bin");
        // Job 0 is the identity: key, hash and wire form all match legacy.
        assert_eq!(tenant_key(JobId(0), p), p);
        assert_eq!(hash_job_path(JobId(0), p), hash_path(p));
        assert_eq!(split_tenant_key(p), (JobId(0), p.to_path_buf()));

        for job in [1u64, 7, u64::MAX] {
            let key = tenant_key(JobId(job), p);
            assert!(key.starts_with(TENANT_PREFIX), "{key:?}");
            assert_ne!(key, p);
            assert_eq!(split_tenant_key(&key), (JobId(job), p.to_path_buf()));
            assert_eq!(hash_job_path(JobId(job), p), hash_path(&key));
        }
        // Distinct jobs never collide on the same path.
        assert_ne!(tenant_key(JobId(1), p), tenant_key(JobId(2), p));
        assert_ne!(hash_job_path(JobId(1), p), hash_job_path(JobId(2), p));
    }

    #[test]
    fn malformed_tenant_prefixes_fall_back_to_default_namespace() {
        for key in [
            "/.hvac-tenants",
            "/.hvac-tenants/",
            "/.hvac-tenants/notanumber/x",
            "/.hvac-tenants/0/x",
        ] {
            let (job, path) = split_tenant_key(Path::new(key));
            assert_eq!(job, JobId::DEFAULT, "{key}");
            assert_eq!(path, PathBuf::from(key), "{key}");
        }
    }

    #[test]
    fn avalanche_on_single_bit_flip() {
        // Flipping one input bit should flip ~half the output bits.
        let a = hash_bytes(b"/gpfs/data/img_00000001.jpg");
        let b = hash_bytes(b"/gpfs/data/img_00000000.jpg");
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "only {flipped} bits flipped");
    }
}
