//! Hash-based file placement for HVAC (paper §III-E).
//!
//! HVAC never consults a metadata service to locate cached data: the home
//! server of a file is computed *algorithmically* from the file path and the
//! job's node allocation. This crate provides:
//!
//! * [`pathhash`] — a fast, stable 64-bit path hash (FNV-1a with an avalanche
//!   finalizer),
//! * [`placement`] — the [`Placement`] trait plus the paper's modulo scheme
//!   and four alternatives (jump consistent hash, rendezvous/HRW, a consistent
//!   hash ring with virtual nodes, and CRUSH-style straw2), all supporting
//!   replica ranking for the fail-over extension,
//! * [`stats`] — load-distribution statistics (per-server shares, CDF against
//!   the ideal, Jain's fairness index) used for Fig. 15,
//! * [`topology`] — failure-domain-aware replica spreading (the paper's
//!   §IV-G future work), as a decorator over any base algorithm.
//!
//! All algorithms are deterministic pure functions of `(path, server count)`:
//! every client computes the same home without coordination, which is the
//! property that removes the metadata bottleneck.

pub mod pathhash;
pub mod placement;
pub mod stats;
pub mod topology;

pub use pathhash::{hash_bytes, hash_path, mix64};
pub use placement::{
    make_placement, moved_fraction, JumpPlacement, ModuloPlacement, Placement, RendezvousPlacement,
    RingPlacement, Straw2Placement,
};
pub use stats::{DistributionStats, LoadCdf};
pub use topology::{Topology, TopologyAware};
