//! Topology-aware placement (paper §IV-G future work: *"topology and
//! fail-over will also be considered when calculating the location of a
//! given file"*).
//!
//! A [`Topology`] maps servers to failure domains (racks, chassis, switches
//! — any grouping that fails together). [`TopologyAware`] wraps any base
//! [`Placement`] and re-ranks its replica list so that the first replicas
//! land in *distinct domains*: a rack-level power event then costs at most
//! one copy of each file. The home server (first replica) is never changed,
//! so data placement — and therefore every already-cached byte — stays
//! identical to the base algorithm; only fail-over targets move.

use crate::placement::Placement;
use hvac_types::FileId;

/// Assignment of servers to failure domains.
#[derive(Debug, Clone)]
pub struct Topology {
    domain_of_server: Vec<u32>,
}

impl Topology {
    /// Build from an explicit server→domain table.
    pub fn new(domain_of_server: Vec<u32>) -> Self {
        Self { domain_of_server }
    }

    /// A regular layout: `servers` servers packed into racks of
    /// `servers_per_domain` (Summit packs 18 nodes per cabinet; with 1
    /// instance per node that is 18 servers per domain).
    pub fn regular(servers: usize, servers_per_domain: usize) -> Self {
        let per = servers_per_domain.max(1);
        Self {
            domain_of_server: (0..servers).map(|s| (s / per) as u32).collect(),
        }
    }

    /// Domain of a server (servers beyond the table land in their own
    /// synthetic domains, so growth degrades gracefully).
    pub fn domain(&self, server: usize) -> u32 {
        self.domain_of_server
            .get(server)
            .copied()
            .unwrap_or(u32::MAX - server as u32)
    }

    /// Number of servers described.
    pub fn len(&self) -> usize {
        self.domain_of_server.len()
    }

    /// Whether the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.domain_of_server.is_empty()
    }

    /// Number of distinct domains.
    pub fn domain_count(&self) -> usize {
        let mut domains: Vec<u32> = self.domain_of_server.clone();
        domains.sort_unstable();
        domains.dedup();
        domains.len()
    }
}

/// A placement decorator that spreads replicas across failure domains.
pub struct TopologyAware<P> {
    inner: P,
    topology: Topology,
}

impl<P: Placement> TopologyAware<P> {
    /// Wrap `inner` with domain-spreading replica selection.
    pub fn new(inner: P, topology: Topology) -> Self {
        Self { inner, topology }
    }

    /// The wrapped placement.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Placement> Placement for TopologyAware<P> {
    fn name(&self) -> &'static str {
        "topology-aware"
    }

    fn home(&self, file: FileId, n_servers: usize) -> usize {
        // Identical to the base algorithm: cached data does not move.
        self.inner.home(file, n_servers)
    }

    fn replicas(&self, file: FileId, n_servers: usize, k: usize) -> Vec<usize> {
        let k = k.min(n_servers);
        if k == 0 {
            return Vec::new();
        }
        // Over-sample the base ranking, then stable-partition it into
        // "first seen from each domain" followed by the rest. The base
        // order is preserved within both groups, so preference degrades
        // gracefully when there are fewer domains than replicas.
        let candidates = self.inner.replicas(file, n_servers, n_servers);
        let mut seen_domains = Vec::new();
        let mut primary = Vec::with_capacity(k);
        let mut overflow = Vec::new();
        for s in candidates {
            let d = self.topology.domain(s);
            if seen_domains.contains(&d) {
                overflow.push(s);
            } else {
                seen_domains.push(d);
                primary.push(s);
            }
        }
        primary.extend(overflow);
        primary.truncate(k);
        primary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathhash::mix64;
    use crate::placement::{ModuloPlacement, RendezvousPlacement};
    use std::collections::HashSet;

    #[test]
    fn regular_topology_shape() {
        let t = Topology::regular(36, 18);
        assert_eq!(t.len(), 36);
        assert_eq!(t.domain_count(), 2);
        assert_eq!(t.domain(0), 0);
        assert_eq!(t.domain(17), 0);
        assert_eq!(t.domain(18), 1);
        // Unknown servers get private synthetic domains.
        assert_ne!(t.domain(100), t.domain(101));
    }

    #[test]
    fn home_is_untouched() {
        let base = RendezvousPlacement;
        let aware = TopologyAware::new(RendezvousPlacement, Topology::regular(64, 8));
        for i in 0..500u64 {
            let f = FileId(mix64(i));
            assert_eq!(aware.home(f, 64), base.home(f, 64));
        }
    }

    #[test]
    fn replicas_span_distinct_domains_when_possible() {
        let aware = TopologyAware::new(RendezvousPlacement, Topology::regular(64, 8));
        for i in 0..500u64 {
            let f = FileId(mix64(i ^ 0xABC));
            let reps = aware.replicas(f, 64, 3);
            assert_eq!(reps.len(), 3);
            let domains: HashSet<usize> = reps.iter().map(|&s| s / 8).collect();
            assert_eq!(domains.len(), 3, "replicas {reps:?} share a rack");
        }
    }

    #[test]
    fn modulo_neighbors_would_share_racks_topology_fixes_it() {
        // Modulo's cyclic replicas land in the same rack most of the time —
        // exactly the single-point-of-failure the paper worries about.
        let base = ModuloPlacement;
        let aware = TopologyAware::new(ModuloPlacement, Topology::regular(64, 8));
        let mut base_shared = 0;
        let mut aware_shared = 0;
        for i in 0..1_000u64 {
            let f = FileId(mix64(i ^ 0x123));
            let same_rack = |reps: &[usize]| {
                let d: HashSet<usize> = reps.iter().map(|&s| s / 8).collect();
                d.len() < reps.len()
            };
            if same_rack(&base.replicas(f, 64, 2)) {
                base_shared += 1;
            }
            if same_rack(&aware.replicas(f, 64, 2)) {
                aware_shared += 1;
            }
        }
        assert!(
            base_shared > 800,
            "modulo pairs mostly co-racked: {base_shared}"
        );
        assert_eq!(aware_shared, 0, "topology-aware must never co-rack a pair");
    }

    #[test]
    fn graceful_degradation_with_fewer_domains_than_replicas() {
        // 2 domains, 4 replicas: the first two span both domains, the rest
        // fill in; all distinct servers.
        let aware = TopologyAware::new(RendezvousPlacement, Topology::regular(16, 8));
        let reps = aware.replicas(FileId(42), 16, 4);
        assert_eq!(reps.len(), 4);
        let unique: HashSet<usize> = reps.iter().copied().collect();
        assert_eq!(unique.len(), 4);
        let first_two: HashSet<usize> = reps[..2].iter().map(|&s| s / 8).collect();
        assert_eq!(first_two.len(), 2, "first two replicas span both domains");
    }

    #[test]
    fn single_server_degenerate() {
        let aware = TopologyAware::new(ModuloPlacement, Topology::regular(1, 1));
        assert_eq!(aware.replicas(FileId(7), 1, 3), vec![0]);
        assert_eq!(aware.home(FileId(7), 1), 0);
    }
}
