//! Load-distribution statistics for placement quality (Fig. 15).
//!
//! The paper reports the "per server file distribution ratio" as a CDF
//! against the ideal (perfectly uniform) distribution, for allocations from
//! 16 to 1,024 nodes, and notes extra deviation below 128 nodes caused by
//! skewed file sizes. [`DistributionStats`] computes those numbers from a
//! per-server load vector (file counts or byte counts).

use serde::{Deserialize, Serialize};

/// Summary statistics of a per-server load vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionStats {
    /// Number of servers.
    pub servers: usize,
    /// Total load (sum over servers).
    pub total: f64,
    /// Smallest per-server load.
    pub min: f64,
    /// Largest per-server load.
    pub max: f64,
    /// Mean per-server load.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// `max / mean` — 1.0 is perfect balance.
    pub peak_to_mean: f64,
    /// Jain's fairness index: `(Σx)² / (n · Σx²)`; 1.0 is perfect balance,
    /// `1/n` is a single hot server.
    pub jain_index: f64,
}

impl DistributionStats {
    /// Compute statistics from per-server loads. Empty input yields zeros.
    pub fn from_loads(loads: &[f64]) -> Self {
        let n = loads.len();
        if n == 0 {
            return Self {
                servers: 0,
                total: 0.0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                stddev: 0.0,
                peak_to_mean: 0.0,
                jain_index: 0.0,
            };
        }
        let total: f64 = loads.iter().sum();
        let mean = total / n as f64;
        let var = loads.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let sum_sq: f64 = loads.iter().map(|&x| x * x).sum();
        let min = loads.iter().copied().fold(f64::INFINITY, f64::min);
        let max = loads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            servers: n,
            total,
            min,
            max,
            mean,
            stddev: var.sqrt(),
            peak_to_mean: if mean > 0.0 { max / mean } else { 0.0 },
            jain_index: if sum_sq > 0.0 {
                total * total / (n as f64 * sum_sq)
            } else {
                0.0
            },
        }
    }

    /// Convenience for integer loads (file counts).
    pub fn from_counts(counts: &[u64]) -> Self {
        let loads: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        Self::from_loads(&loads)
    }
}

/// The cumulative distribution of load across servers, sorted ascending, for
/// plotting against the ideal diagonal (Fig. 15's presentation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadCdf {
    /// `points[i] = (server_fraction, load_fraction)` after sorting servers
    /// by load ascending; the ideal distribution is the diagonal
    /// `load_fraction == server_fraction`.
    pub points: Vec<(f64, f64)>,
    /// Maximum vertical deviation from the ideal diagonal
    /// (a Kolmogorov–Smirnov-style distance; 0 = perfectly uniform).
    pub max_deviation: f64,
}

impl LoadCdf {
    /// Build the CDF from per-server loads.
    pub fn from_loads(loads: &[f64]) -> Self {
        let n = loads.len();
        if n == 0 {
            return Self {
                points: Vec::new(),
                max_deviation: 0.0,
            };
        }
        let mut sorted = loads.to_vec();
        sorted.sort_unstable_by(|a, b| a.total_cmp(b));
        let total: f64 = sorted.iter().sum();
        let mut points = Vec::with_capacity(n);
        let mut cum = 0.0;
        let mut max_dev = 0.0f64;
        for (i, &x) in sorted.iter().enumerate() {
            cum += x;
            let sf = (i + 1) as f64 / n as f64;
            let lf = if total > 0.0 { cum / total } else { sf };
            points.push((sf, lf));
            max_dev = max_dev.max((lf - sf).abs());
        }
        Self {
            points,
            max_deviation: max_dev,
        }
    }

    /// Convenience for integer loads.
    pub fn from_counts(counts: &[u64]) -> Self {
        let loads: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        Self::from_loads(&loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_loads_are_perfectly_fair() {
        let s = DistributionStats::from_counts(&[100, 100, 100, 100]);
        assert_eq!(s.servers, 4);
        assert!((s.jain_index - 1.0).abs() < 1e-12);
        assert!((s.peak_to_mean - 1.0).abs() < 1e-12);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 100.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn single_hot_server_jain_is_one_over_n() {
        let s = DistributionStats::from_counts(&[400, 0, 0, 0]);
        assert!((s.jain_index - 0.25).abs() < 1e-12);
        assert!((s.peak_to_mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero_inputs() {
        let s = DistributionStats::from_loads(&[]);
        assert_eq!(s.servers, 0);
        assert_eq!(s.jain_index, 0.0);
        let z = DistributionStats::from_counts(&[0, 0]);
        assert_eq!(z.jain_index, 0.0);
        assert_eq!(z.peak_to_mean, 0.0);
    }

    #[test]
    fn cdf_of_uniform_is_diagonal() {
        let c = LoadCdf::from_counts(&[5, 5, 5, 5, 5]);
        for &(sf, lf) in &c.points {
            assert!((sf - lf).abs() < 1e-12);
        }
        assert!(c.max_deviation < 1e-12);
        assert_eq!(c.points.last().unwrap(), &(1.0, 1.0));
    }

    #[test]
    fn cdf_of_skewed_load_deviates_below_diagonal() {
        let c = LoadCdf::from_counts(&[1, 1, 1, 97]);
        // sorted ascending: lightest 3 servers hold 3% of load => CDF sags.
        assert!(c.max_deviation > 0.5);
        let (sf, lf) = c.points[2];
        assert!((sf - 0.75).abs() < 1e-12);
        assert!(lf < 0.05);
    }

    #[test]
    fn cdf_always_ends_at_one_one() {
        let c = LoadCdf::from_counts(&[3, 9, 1]);
        let &(sf, lf) = c.points.last().unwrap();
        assert!((sf - 1.0).abs() < 1e-12);
        assert!((lf - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_empty_input() {
        let c = LoadCdf::from_loads(&[]);
        assert!(c.points.is_empty());
        assert_eq!(c.max_deviation, 0.0);
    }

    #[test]
    fn more_servers_with_hashed_loads_converge_to_diagonal() {
        // Emulates Fig. 15: with more files per server the CDF approaches the
        // ideal; quantifies "well-balanced distribution".
        use crate::pathhash::hash_path;
        use crate::placement::{ModuloPlacement, Placement};
        let files = 200_000;
        let mut devs = Vec::new();
        for n_servers in [16usize, 256] {
            let mut counts = vec![0u64; n_servers];
            for i in 0..files {
                let f = hash_path(format!("/gpfs/train/{i:09}.jpg"));
                counts[ModuloPlacement.home(f, n_servers)] += 1;
            }
            devs.push(LoadCdf::from_counts(&counts).max_deviation);
        }
        // Both should be near-ideal, and absolute deviation should be small.
        assert!(devs[0] < 0.02, "16 servers dev {}", devs[0]);
        assert!(devs[1] < 0.05, "256 servers dev {}", devs[1]);
    }
}
