//! Property-based tests for the placement layer.

use hvac_hash::placement::{
    make_placement, JumpPlacement, ModuloPlacement, Placement, RendezvousPlacement, RingPlacement,
    Straw2Placement,
};
use hvac_hash::stats::{DistributionStats, LoadCdf};
use hvac_hash::{hash_bytes, hash_path};
use hvac_types::{FileId, PlacementKind};
use proptest::prelude::*;

fn placements() -> Vec<Box<dyn Placement>> {
    vec![
        Box::new(ModuloPlacement),
        Box::new(JumpPlacement),
        Box::new(RendezvousPlacement),
        Box::new(RingPlacement::default()),
        Box::new(Straw2Placement::new()),
    ]
}

proptest! {
    #[test]
    fn hash_is_stable_and_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(hash_bytes(&bytes), hash_bytes(&bytes));
    }

    #[test]
    fn path_hash_distinguishes_suffixes(base in "[a-z/]{1,40}", a in 0u32..1_000_000, b in 0u32..1_000_000) {
        prop_assume!(a != b);
        prop_assert_ne!(
            hash_path(format!("/{base}/{a}")),
            hash_path(format!("/{base}/{b}"))
        );
    }

    #[test]
    fn home_in_range_for_all_algorithms(fid in any::<u64>(), n in 1usize..2048) {
        for p in placements() {
            let h = p.home(FileId(fid), n);
            prop_assert!(h < n, "{} gave {h} for n={n}", p.name());
        }
    }

    #[test]
    fn replicas_distinct_in_range(fid in any::<u64>(), n in 1usize..256, k in 1usize..12) {
        for p in placements() {
            let reps = p.replicas(FileId(fid), n, k);
            prop_assert_eq!(reps.len(), k.min(n));
            prop_assert_eq!(reps[0], p.home(FileId(fid), n));
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), reps.len(), "{} returned duplicates", p.name());
            prop_assert!(reps.iter().all(|&r| r < n));
        }
    }

    #[test]
    fn jump_minimal_movement(fid in any::<u64>(), n in 1u64..512) {
        // Growing the pool from n to n+1 either keeps the key or moves it to
        // the new bucket n — never shuffles between old buckets.
        let before = JumpPlacement.home(FileId(fid), n as usize);
        let after = JumpPlacement.home(FileId(fid), (n + 1) as usize);
        prop_assert!(after == before || after == n as usize);
    }

    #[test]
    fn make_placement_agrees_with_direct_construction(fid in any::<u64>(), n in 1usize..128) {
        let pairs: Vec<(PlacementKind, Box<dyn Placement>)> = vec![
            (PlacementKind::Modulo, Box::new(ModuloPlacement)),
            (PlacementKind::Jump, Box::new(JumpPlacement)),
            (PlacementKind::Rendezvous, Box::new(RendezvousPlacement)),
        ];
        for (kind, direct) in pairs {
            prop_assert_eq!(
                make_placement(kind).home(FileId(fid), n),
                direct.home(FileId(fid), n)
            );
        }
    }

    #[test]
    fn jain_index_bounds(loads in proptest::collection::vec(0u64..1_000_000, 1..64)) {
        let s = DistributionStats::from_counts(&loads);
        let n = loads.len() as f64;
        if loads.iter().any(|&x| x > 0) {
            prop_assert!(s.jain_index >= 1.0 / n - 1e-9);
            prop_assert!(s.jain_index <= 1.0 + 1e-9);
            prop_assert!(s.peak_to_mean >= 1.0 - 1e-9);
        }
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
    }

    #[test]
    fn cdf_is_monotone_and_below_diagonal(loads in proptest::collection::vec(0u64..100_000, 1..64)) {
        let c = LoadCdf::from_counts(&loads);
        let mut prev = (0.0f64, 0.0f64);
        for &(sf, lf) in &c.points {
            prop_assert!(sf >= prev.0 - 1e-12);
            prop_assert!(lf >= prev.1 - 1e-12);
            // Sorting ascending guarantees the CDF is at or below the diagonal.
            prop_assert!(lf <= sf + 1e-9);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&lf));
            prev = (sf, lf);
        }
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c.max_deviation));
    }
}
