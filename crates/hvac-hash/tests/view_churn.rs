//! Membership-churn properties of view-aware placement.
//!
//! The elastic-membership contract: for the identity-hashing placements
//! (`Ring`, `Rendezvous`), a *single* node join or leave relocates at most
//! ~`1/n + ε` of keys — only the keys that land on (or lose) the changed
//! member move, everyone else's arc/weight is untouched. `Modulo` makes no
//! such promise (documented full churn: a leave remaps almost everything).
//! Replica sets must stay distinct and home-first across any view change.

use hvac_hash::placement::moved_fraction;
use hvac_hash::{hash_path, Placement, RendezvousPlacement, RingPlacement};
use hvac_types::view::ClusterView;
use hvac_types::NodeId;
use proptest::prelude::*;

const SAMPLES: u64 = 2_000;

fn bounded_placements() -> Vec<Box<dyn Placement>> {
    vec![
        Box::new(RingPlacement::default()),
        Box::new(RendezvousPlacement),
    ]
}

/// Churn ceiling for one membership change among `n_after` live servers:
/// the ideal is `1/n_after` (join) or `1/n_before` (leave); we allow 2× the
/// ideal plus a flat sampling/vnode-variance allowance.
fn churn_bound(n_smaller: usize) -> f64 {
    2.0 / (n_smaller as f64 + 1.0) + 0.05
}

proptest! {
    #[test]
    fn single_join_moves_bounded_minority(n in 2usize..24) {
        let old = ClusterView::initial(n, 1).expect("non-empty");
        let new = old.with_node_added(old.next_node_id()).expect("fresh node");
        for p in bounded_placements() {
            let moved = moved_fraction(p.as_ref(), &old, &new, SAMPLES);
            prop_assert!(
                moved <= churn_bound(n),
                "{}: join n={n} moved {moved:.3} > bound {:.3}",
                p.name(),
                churn_bound(n)
            );
            // And the join must actually rebalance: some keys adopt the
            // new member (statistically certain at these sample counts).
            prop_assert!(moved > 0.0, "{}: join moved nothing", p.name());
        }
    }

    #[test]
    fn single_leave_moves_bounded_minority(n in 3usize..24, victim in 0usize..24) {
        let old = ClusterView::initial(n, 1).expect("non-empty");
        let victim = NodeId((victim % n) as u32);
        let new = old.with_node_removed(victim).expect("member");
        for p in bounded_placements() {
            let moved = moved_fraction(p.as_ref(), &old, &new, SAMPLES);
            prop_assert!(
                moved <= churn_bound(n - 1),
                "{}: leave of {victim} from n={n} moved {moved:.3} > bound {:.3}",
                p.name(),
                churn_bound(n - 1)
            );
            // Every key homed on the victim must have moved somewhere.
            for i in 0..SAMPLES {
                let f = hash_path(format!("/gpfs/churn/{i}"));
                let home = p.home_in_view(f, &new);
                prop_assert!(home.node != victim, "{}: key still on removed node", p.name());
            }
        }
    }

    #[test]
    fn modulo_mid_leave_is_full_churn(n in 4usize..16) {
        // Documented behaviour, pinned so nobody mistakes modulo for a
        // minimal-churn placement: removing a *middle* node shifts nearly
        // every slot.
        let p = hvac_hash::ModuloPlacement;
        let old = ClusterView::initial(n, 1).expect("non-empty");
        let new = old.with_node_removed(NodeId(1)).expect("member");
        let moved = moved_fraction(&p, &old, &new, SAMPLES);
        prop_assert!(
            moved > 0.5,
            "modulo mid-leave at n={n} moved only {moved:.3}; expected full churn"
        );
    }

    #[test]
    fn replicas_stay_distinct_and_home_first_across_views(
        n in 2usize..12,
        k in 1usize..5,
        i in 0u64..10_000,
    ) {
        let f = hash_path(format!("/gpfs/replicas/{i}"));
        let v0 = ClusterView::initial(n, 1).expect("non-empty");
        let v1 = v0.with_node_added(v0.next_node_id()).expect("fresh node");
        let v2 = v1.with_node_removed(NodeId(0)).expect("member");
        for p in bounded_placements() {
            for view in [&v0, &v1, &v2] {
                let reps = p.replicas_in_view(f, view, k);
                prop_assert_eq!(reps.len(), k.min(view.n_servers()), "{}", p.name());
                prop_assert_eq!(reps[0], p.home_in_view(f, view), "{}", p.name());
                let mut sorted = reps.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), reps.len(), "{} duplicates", p.name());
                for sid in &reps {
                    prop_assert!(view.contains(*sid), "{} replica outside view", p.name());
                }
            }
        }
    }

    #[test]
    fn initial_view_matches_slot_placement(n in 1usize..32, i in 0u64..100_000) {
        // At epoch 0 the view is the dense launch layout, so view-aware
        // *slot-mapped* placements must agree exactly with the legacy API.
        let f = hash_path(format!("/gpfs/compat/{i}"));
        let view = ClusterView::initial(n, 1).expect("non-empty");
        let p = hvac_hash::ModuloPlacement;
        prop_assert_eq!(p.home_in_view(f, &view), view.server_at(p.home(f, n)));
    }
}
