//! Property-based tests for the simulation engine and resources.

use hvac_sim::engine::Engine;
use hvac_sim::resource::{FifoPool, FluidPipe, IopsGate};
use hvac_types::{Bandwidth, ByteSize, SimTime};
use proptest::prelude::*;

proptest! {
    /// A FIFO pool never completes a request before `arrival + service`, and
    /// the makespan of a burst is at least total_work / k.
    #[test]
    fn fifo_pool_work_conservation(
        servers in 1usize..16,
        services in proptest::collection::vec(1u64..10_000, 1..100),
    ) {
        let mut pool = FifoPool::new(servers);
        let mut total_ns = 0u64;
        let mut last = SimTime::ZERO;
        for &s in &services {
            let service = SimTime::from_nanos(s);
            let done = pool.admit(SimTime::ZERO, service);
            prop_assert!(done >= service, "finished before service time elapsed");
            total_ns += s;
            if done > last {
                last = done;
            }
        }
        // Work conservation: k servers can't do the work faster than W/k.
        let lower = total_ns / servers as u64;
        prop_assert!(last.as_nanos() >= lower, "makespan {last} < {lower}");
        // ...and no slower than doing it all serially.
        prop_assert!(last.as_nanos() <= total_ns);
        prop_assert_eq!(pool.requests(), services.len() as u64);
    }

    /// Completions are non-decreasing when arrivals are non-decreasing
    /// (the invariant the training driver's heap exists to maintain).
    #[test]
    fn fifo_pool_fifo_order(
        servers in 1usize..8,
        arrivals in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut pool = FifoPool::new(servers);
        let mut prev = SimTime::ZERO;
        for a in sorted {
            let done = pool.admit(SimTime::from_nanos(a), SimTime::from_micros(5));
            prop_assert!(done >= prev, "completion went backwards");
            prev = done;
        }
    }

    /// A fluid pipe's makespan for a burst equals total_bytes / bandwidth.
    #[test]
    fn fluid_pipe_exact_under_saturation(
        sizes in proptest::collection::vec(1u64..1_000_000, 1..100),
        bw_mb in 1u64..10_000,
    ) {
        let bw = Bandwidth::bytes_per_sec(bw_mb as f64 * 1e6);
        let mut pipe = FluidPipe::new(bw);
        let mut last = SimTime::ZERO;
        let mut total = 0u64;
        for &s in &sizes {
            last = pipe.admit(SimTime::ZERO, ByteSize(s));
            total += s;
        }
        let expect = total as f64 / (bw_mb as f64 * 1e6);
        let got = last.as_secs_f64();
        prop_assert!((got - expect).abs() / expect < 1e-3, "{got} vs {expect}");
        prop_assert_eq!(pipe.bytes(), total);
    }

    /// An idle pipe serves immediately; a gate enforces its spacing exactly.
    #[test]
    fn iops_gate_spacing_is_exact(iops in 1u64..1_000_000, n in 1u64..200) {
        let mut gate = IopsGate::new(iops);
        let interval = 1_000_000_000 / iops;
        for i in 0..n {
            let grant = gate.admit(SimTime::ZERO);
            prop_assert_eq!(grant.as_nanos(), i * interval);
        }
    }

    /// The engine executes any batch of events in exact (time, seq) order.
    #[test]
    fn engine_total_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut eng: Engine<Vec<(u64, usize)>> = Engine::new();
        let mut world: Vec<(u64, usize)> = Vec::new();
        for (seq, &t) in times.iter().enumerate() {
            eng.at(SimTime::from_nanos(t), move |w: &mut Vec<(u64, usize)>, _| {
                w.push((t, seq));
            });
        }
        eng.run(&mut world);
        prop_assert_eq!(world.len(), times.len());
        for pair in world.windows(2) {
            let (t0, s0) = pair[0];
            let (t1, s1) = pair[1];
            prop_assert!(t0 < t1 || (t0 == t1 && s0 < s1), "order violated");
        }
    }

    /// Events scheduled from inside events still respect time order.
    #[test]
    fn engine_nested_scheduling_preserves_clock(delays in proptest::collection::vec(1u64..10_000, 1..50)) {
        struct W { observed: Vec<u64>, delays: Vec<u64>, next: usize }
        fn step(w: &mut W, eng: &mut Engine<W>) {
            w.observed.push(eng.now().as_nanos());
            if w.next < w.delays.len() {
                let d = w.delays[w.next];
                w.next += 1;
                eng.after(SimTime::from_nanos(d), step);
            }
        }
        let mut eng = Engine::new();
        let mut w = W { observed: Vec::new(), delays: delays.clone(), next: 0 };
        eng.at(SimTime::ZERO, step);
        eng.run(&mut w);
        prop_assert_eq!(w.observed.len(), delays.len() + 1);
        // The k-th observation equals the prefix sum of delays.
        let mut acc = 0u64;
        prop_assert_eq!(w.observed[0], 0);
        for (i, d) in delays.iter().enumerate() {
            acc += d;
            prop_assert_eq!(w.observed[i + 1], acc);
        }
    }
}
