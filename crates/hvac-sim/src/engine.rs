//! The event-heap simulation engine.
//!
//! [`Engine<W>`] owns a priority queue of timestamped one-shot events.
//! Each event is a closure receiving the user's world state and the engine
//! (to schedule follow-up events). Ties break by insertion order, so the
//! simulation is deterministic.
//!
//! Resources (queues, pipes) deliberately live *outside* the engine — they
//! compute completion times arithmetically (see [`crate::resource`]) and the
//! caller schedules a continuation at that time. This keeps the hot path
//! allocation-light: one boxed closure per process step, not per resource
//! visit.

use hvac_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: a boxed continuation over the world.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct HeapEntry<W> {
    time: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for HeapEntry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for HeapEntry<W> {}
impl<W> PartialOrd for HeapEntry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for HeapEntry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest (time, seq).
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A discrete-event simulator over world type `W`.
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    heap: BinaryHeap<HeapEntry<W>>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// An empty engine at time zero.
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `f` at absolute time `t`. Scheduling in the past (t < now)
    /// is clamped to `now` — the event runs next.
    pub fn at(&mut self, t: SimTime, f: impl FnOnce(&mut W, &mut Engine<W>) + 'static) {
        let time = if t < self.now { self.now } else { t };
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry {
            time,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedule `f` after a delay.
    pub fn after(&mut self, delay: SimTime, f: impl FnOnce(&mut W, &mut Engine<W>) + 'static) {
        self.at(self.now.saturating_add(delay), f);
    }

    /// Run until the event queue drains. Returns the final time.
    pub fn run(&mut self, world: &mut W) -> SimTime {
        self.run_until(world, SimTime::MAX)
    }

    /// Run until the queue drains or the next event would be after
    /// `deadline`. Returns the time of the last executed event.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        loop {
            match self.heap.peek() {
                Some(entry) if entry.time <= deadline => {}
                _ => break,
            }
            let Some(entry) = self.heap.pop() else { break };
            debug_assert!(entry.time >= self.now, "time went backwards");
            self.now = entry.time;
            self.executed += 1;
            (entry.f)(world, self);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut world = Vec::new();
        eng.at(SimTime::from_secs(3), |w: &mut Vec<u32>, _| w.push(3));
        eng.at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        eng.at(SimTime::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        let end = eng.run(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(end, SimTime::from_secs(3));
        assert_eq!(eng.executed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut world = Vec::new();
        for i in 0..10u32 {
            eng.at(SimTime::from_secs(5), move |w: &mut Vec<u32>, _| w.push(i));
        }
        eng.run(&mut world);
        assert_eq!(world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_followups() {
        // A self-perpetuating process: count to 5 with 1 s spacing.
        struct World {
            ticks: u32,
        }
        fn tick(w: &mut World, eng: &mut Engine<World>) {
            w.ticks += 1;
            if w.ticks < 5 {
                eng.after(SimTime::from_secs(1), tick);
            }
        }
        let mut eng = Engine::new();
        let mut world = World { ticks: 0 };
        eng.at(SimTime::ZERO, tick);
        let end = eng.run(&mut world);
        assert_eq!(world.ticks, 5);
        assert_eq!(end, SimTime::from_secs(4));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut eng: Engine<Vec<SimTime>> = Engine::new();
        let mut world = Vec::new();
        eng.at(
            SimTime::from_secs(10),
            |w: &mut Vec<SimTime>, e: &mut Engine<Vec<SimTime>>| {
                // "Yesterday" is not allowed; this must run at t=10, not t=1.
                e.at(
                    SimTime::from_secs(1),
                    |w2: &mut Vec<SimTime>, e2: &mut Engine<Vec<SimTime>>| {
                        w2.push(e2.now());
                    },
                );
                w.push(e.now());
            },
        );
        eng.run(&mut world);
        assert_eq!(world, vec![SimTime::from_secs(10), SimTime::from_secs(10)]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng: Engine<u32> = Engine::new();
        let mut world = 0u32;
        for s in 1..=10 {
            eng.at(SimTime::from_secs(s), |w: &mut u32, _| *w += 1);
        }
        eng.run_until(&mut world, SimTime::from_secs(4));
        assert_eq!(world, 4);
        assert_eq!(eng.pending(), 6);
        eng.run(&mut world);
        assert_eq!(world, 10);
    }

    #[test]
    fn empty_run_is_a_noop() {
        let mut eng: Engine<()> = Engine::new();
        assert_eq!(eng.run(&mut ()), SimTime::ZERO);
        assert_eq!(eng.executed(), 0);
    }
}
