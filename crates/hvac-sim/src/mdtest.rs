//! The MDTest-style metadata/transaction storm (paper §II-C, Figs. 3 & 4).
//!
//! MDTest measures `<open-read-close>` transactions per second. Each rank
//! issues its next transaction the moment the previous one completes — a
//! closed-loop workload, which is what the event engine is for: completion
//! times depend on global queueing, and the engine interleaves ranks
//! dynamically.

use crate::engine::Engine;
use crate::iostack::{FileAccess, IoBackend};
use hvac_types::{ByteSize, SimTime};

/// Storm parameters.
#[derive(Debug, Clone)]
pub struct MdtestConfig {
    /// Compute nodes.
    pub nodes: u32,
    /// MPI ranks per node.
    pub procs_per_node: u32,
    /// Transactions per rank.
    pub txns_per_proc: u32,
    /// File size per transaction (32 KiB and 8 MiB in the paper).
    pub file_size: ByteSize,
}

impl MdtestConfig {
    /// The paper's small-file configuration (32 KiB).
    pub fn small(nodes: u32) -> Self {
        Self {
            nodes,
            procs_per_node: 2,
            txns_per_proc: 64,
            file_size: ByteSize::kib(32),
        }
    }

    /// The paper's large-file configuration (8 MiB).
    pub fn large(nodes: u32) -> Self {
        Self {
            nodes,
            procs_per_node: 2,
            txns_per_proc: 64,
            file_size: ByteSize::mib(8),
        }
    }

    /// Total transactions.
    pub fn total_txns(&self) -> u64 {
        self.nodes as u64 * self.procs_per_node as u64 * self.txns_per_proc as u64
    }
}

/// Storm outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdtestResult {
    /// Transactions completed.
    pub total_txns: u64,
    /// Wall time from first issue to last completion.
    pub makespan: SimTime,
    /// Transactions per second.
    pub tps: f64,
}

struct StormWorld<B> {
    backend: B,
    config: MdtestConfig,
    next_file: u64,
    completed: u64,
    last_completion: SimTime,
}

fn issue<B: IoBackend + 'static>(
    rank: u32,
    remaining: u32,
    w: &mut StormWorld<B>,
    eng: &mut Engine<StormWorld<B>>,
) {
    if remaining == 0 {
        return;
    }
    let node = rank / w.config.procs_per_node;
    let file = FileAccess {
        index: w.next_file,
        size: w.config.file_size,
    };
    w.next_file += 1;
    let done = w.backend.access(eng.now(), node, file);
    eng.at(done, move |w: &mut StormWorld<B>, eng| {
        w.completed += 1;
        if eng.now() > w.last_completion {
            w.last_completion = eng.now();
        }
        issue(rank, remaining - 1, w, eng);
    });
}

/// Run the storm over a backend; every rank reads unique files (MDTest
/// semantics — it measures the file system, not a cache).
pub fn run_mdtest<B: IoBackend + 'static>(backend: B, config: MdtestConfig) -> MdtestResult {
    let total_ranks = config.nodes * config.procs_per_node;
    let txns = config.txns_per_proc;
    let mut world = StormWorld {
        backend,
        config,
        next_file: 0,
        completed: 0,
        last_completion: SimTime::ZERO,
    };
    let mut eng: Engine<StormWorld<B>> = Engine::new();
    for rank in 0..total_ranks {
        eng.at(SimTime::ZERO, move |w: &mut StormWorld<B>, eng| {
            issue(rank, txns, w, eng);
        });
    }
    eng.run(&mut world);
    let makespan = world.last_completion;
    let secs = makespan.as_secs_f64();
    MdtestResult {
        total_txns: world.completed,
        makespan,
        tps: if secs > 0.0 {
            world.completed as f64 / secs
        } else {
            f64::INFINITY
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpfs::GpfsModel;
    use crate::iostack::{GpfsBackend, XfsLocalBackend};

    #[test]
    fn all_transactions_complete() {
        let cfg = MdtestConfig::small(4);
        let result = run_mdtest(GpfsBackend::new(GpfsModel::summit()), cfg.clone());
        assert_eq!(result.total_txns, cfg.total_txns());
        assert!(result.makespan > SimTime::ZERO);
        assert!(result.tps > 0.0);
    }

    #[test]
    fn xfs_scales_linearly_with_nodes() {
        let tps =
            |nodes| run_mdtest(XfsLocalBackend::summit(nodes), MdtestConfig::small(nodes)).tps;
        let t4 = tps(4);
        let t16 = tps(16);
        let ratio = t16 / t4;
        assert!(
            (ratio - 4.0).abs() < 0.5,
            "XFS should scale ~4x from 4->16 nodes, got {ratio}"
        );
    }

    #[test]
    fn gpfs_small_file_tps_saturates() {
        // Fig. 3's shape: GPFS TPS stops growing once the MDS pool is full.
        let tps = |nodes| {
            run_mdtest(
                GpfsBackend::new(GpfsModel::summit()),
                MdtestConfig::small(nodes),
            )
            .tps
        };
        let t1024 = tps(1024);
        let t4096 = tps(4096);
        let growth = t4096 / t1024;
        assert!(
            growth < 1.5,
            "GPFS small-file TPS should be saturated by 1024 nodes, grew {growth}x"
        );
        // And the theoretical ceiling is mds_count / mds_op_time.
        let cfg = hvac_types::GpfsConfig::default();
        let ceiling = cfg.mds_count as f64 / (cfg.mds_op_ns as f64 * 1e-9);
        assert!(t4096 <= ceiling * 1.05, "t4096={t4096} ceiling={ceiling}");
        assert!(
            t4096 >= ceiling * 0.5,
            "t4096={t4096} far below ceiling {ceiling}"
        );
    }

    #[test]
    fn gpfs_large_file_tps_is_bandwidth_bound() {
        // Fig. 4's shape: at 8 MiB the ceiling is aggregate bandwidth.
        let result = run_mdtest(
            GpfsBackend::new(GpfsModel::summit()),
            MdtestConfig::large(512),
        );
        let bw_ceiling_tps = 2.5e12 / (8.0 * 1024.0 * 1024.0);
        assert!(result.tps <= bw_ceiling_tps * 1.05);
        assert!(
            result.tps >= bw_ceiling_tps * 0.5,
            "tps {} vs ceiling {bw_ceiling_tps}",
            result.tps
        );
    }

    #[test]
    fn crossover_xfs_beats_gpfs_at_scale() {
        // The motivating gap: at large node counts node-local wins big.
        let nodes = 1024;
        let gpfs = run_mdtest(
            GpfsBackend::new(GpfsModel::summit()),
            MdtestConfig::small(nodes),
        );
        let xfs = run_mdtest(XfsLocalBackend::summit(nodes), MdtestConfig::small(nodes));
        assert!(
            xfs.tps > gpfs.tps * 5.0,
            "XFS {} should dwarf GPFS {} at {nodes} nodes",
            xfs.tps,
            gpfs.tps
        );
    }
}
