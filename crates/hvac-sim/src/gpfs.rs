//! The GPFS (Alpine) queueing model.
//!
//! §II-C of the paper describes the pathology precisely: every file open
//! walks to a metadata server, acquires a token/lock, then data flows from
//! the NSD servers; "tens of metadata servers and a few hundreds of data
//! servers" serve the whole machine, so millions of small `<open-read-close>`
//! transactions queue at the MDS pool while large reads saturate the
//! 2.5 TB/s aggregate bandwidth. [`GpfsModel`] is exactly that: an MDS
//! [`FifoPool`] in front of a data-side [`FluidPipe`].

use crate::resource::{FifoPool, FluidPipe};
use hvac_types::{ByteSize, GpfsConfig, SimTime};

/// Queueing model of a GPFS file system.
#[derive(Debug, Clone)]
pub struct GpfsModel {
    config: GpfsConfig,
    mds: FifoPool,
    data: FluidPipe,
    opens: u64,
    mds_service: SimTime,
}

impl GpfsModel {
    /// Build from a configuration.
    pub fn new(config: GpfsConfig) -> Self {
        Self {
            mds: FifoPool::new(config.mds_count as usize),
            data: FluidPipe::new(config.aggregate_bandwidth),
            mds_service: SimTime::from_nanos(config.mds_op_ns),
            config,
            opens: 0,
        }
    }

    /// Declare the number of concurrent clients hammering the file system;
    /// inflates MDS service time by `mds_overload_per_1k_clients` per 1,000
    /// clients (token/lock contention — the cause of the paper's GPFS
    /// regression at 1,024 nodes).
    pub fn set_client_count(&mut self, clients: u32) {
        let factor = 1.0 + self.config.mds_overload_per_1k_clients * clients as f64 / 1000.0;
        self.mds_service = SimTime::from_secs_f64(self.config.mds_op_ns as f64 * 1e-9 * factor);
    }

    /// Summit's Alpine with paper-calibrated defaults.
    pub fn summit() -> Self {
        Self::new(GpfsConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpfsConfig {
        &self.config
    }

    /// An `open(2)`: RPC to an MDS + token acquisition, FIFO-queued on the
    /// MDS pool. Returns completion time.
    pub fn open(&mut self, now: SimTime) -> SimTime {
        self.opens += 1;
        let arrive = now.saturating_add(SimTime::from_nanos(self.config.rpc_latency_ns));
        self.mds.admit(arrive, self.mds_service)
    }

    /// A read of `size` bytes: striped across NSD servers. The aggregate
    /// pipe models saturation of the whole file system; a single stream is
    /// additionally capped at `per_stream_bandwidth` (finite stripe
    /// fan-out), so the client observes the *slower* of the two.
    pub fn read(&mut self, now: SimTime, size: ByteSize) -> SimTime {
        let arrive = now.saturating_add(SimTime::from_nanos(self.config.rpc_latency_ns));
        let aggregate_done = self.data.admit(arrive, size);
        let stream_done = arrive.saturating_add(SimTime::from_secs_f64(
            self.config.per_stream_bandwidth.transfer_secs(size),
        ));
        if aggregate_done > stream_done {
            aggregate_done
        } else {
            stream_done
        }
    }

    /// A `close(2)`: token release — cheap, no MDS queueing (the paper calls
    /// out opens, not closes, as the metadata bottleneck).
    pub fn close(&mut self, now: SimTime) -> SimTime {
        now.saturating_add(SimTime::from_nanos(self.config.rpc_latency_ns))
    }

    /// A full `<open, read, close>` transaction (the MDTest unit, and the
    /// per-sample access profile of DL training, §III-F).
    pub fn open_read_close(&mut self, now: SimTime, size: ByteSize) -> SimTime {
        let opened = self.open(now);
        let read = self.read(opened, size);
        self.close(read)
    }

    /// Total opens served (MDS load).
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.data.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_types::Bandwidth;

    #[test]
    fn open_cost_is_mds_bound_under_load() {
        let mut gpfs = GpfsModel::summit();
        let k = gpfs.config().mds_count as u64;
        let per_op = gpfs.config().mds_op_ns;
        // A storm of 10k simultaneous opens takes ~(10k/k)*per_op.
        let mut last = SimTime::ZERO;
        for _ in 0..10_000 {
            last = gpfs.open(SimTime::ZERO);
        }
        let expect_ns = (10_000u64).div_ceil(k) * per_op;
        let got = last.as_nanos();
        let slack = per_op + gpfs.config().rpc_latency_ns + 100_000;
        assert!(
            got >= expect_ns && got < expect_ns + slack,
            "got {got}, expect ~{expect_ns}"
        );
    }

    #[test]
    fn large_reads_are_bandwidth_bound() {
        let mut gpfs = GpfsModel::summit();
        // 10,000 reads of 8 MiB arriving at once saturate the aggregate:
        // makespan ≈ total / 2.5 TB/s (the per-stream cap is smaller).
        let size = ByteSize::mib(8);
        let mut last = SimTime::ZERO;
        for _ in 0..10_000 {
            last = gpfs.read(SimTime::ZERO, size);
        }
        let expect = 10_000.0 * size.as_f64() / 2.5e12;
        assert!(
            (last.as_secs_f64() - expect).abs() / expect < 0.05,
            "{last}"
        );
        assert_eq!(gpfs.bytes_read(), 10_000 * size.bytes());

        // A single uncontended read is stream-capped, not aggregate-fast.
        let mut solo = GpfsModel::summit();
        let t = solo.read(SimTime::ZERO, size).as_secs_f64();
        let stream = size.as_f64() / solo.config().per_stream_bandwidth.as_bytes_per_sec();
        assert!(t >= stream, "solo read {t} vs stream floor {stream}");
    }

    #[test]
    fn transaction_chains_phases() {
        let mut gpfs = GpfsModel::summit();
        let t = gpfs.open_read_close(SimTime::ZERO, ByteSize::kib(32));
        let cfg = gpfs.config();
        // At least one MDS op + 3 RPC latencies.
        assert!(t.as_nanos() >= cfg.mds_op_ns + 3 * cfg.rpc_latency_ns);
        assert_eq!(gpfs.opens(), 1);
    }

    #[test]
    fn client_overload_inflates_mds_service() {
        let mut calm = GpfsModel::summit();
        let mut stormy = GpfsModel::summit();
        calm.set_client_count(64);
        stormy.set_client_count(2048);
        let mut last_calm = SimTime::ZERO;
        let mut last_stormy = SimTime::ZERO;
        for _ in 0..10_000 {
            last_calm = calm.open(SimTime::ZERO);
            last_stormy = stormy.open(SimTime::ZERO);
        }
        let ratio = last_stormy.as_secs_f64() / last_calm.as_secs_f64();
        // 2048 clients => 1.246/1.008 ≈ 1.24x slower metadata service.
        assert!(ratio > 1.15 && ratio < 1.35, "overload ratio {ratio}");
    }

    #[test]
    fn small_file_storm_saturates_mds_not_bandwidth() {
        // The crux of Fig. 3: with 32 KiB files the MDS pool is the
        // bottleneck — doubling bandwidth must not change the makespan.
        let mut base = GpfsModel::summit();
        let mut fat = GpfsModel::new(GpfsConfig {
            aggregate_bandwidth: Bandwidth::tb_per_sec(25.0),
            ..GpfsConfig::default()
        });
        let mut last_base = SimTime::ZERO;
        let mut last_fat = SimTime::ZERO;
        for _ in 0..20_000 {
            last_base = base.open_read_close(SimTime::ZERO, ByteSize::kib(32));
            last_fat = fat.open_read_close(SimTime::ZERO, ByteSize::kib(32));
        }
        let ratio = last_base.as_secs_f64() / last_fat.as_secs_f64();
        assert!(
            ratio < 1.15,
            "small files should be MDS-bound, ratio {ratio}"
        );
    }
}
