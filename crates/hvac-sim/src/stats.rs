//! Latency statistics: a log-bucketed histogram for per-access latencies.
//!
//! Mean epoch times (Figs. 8–13) hide the tail; barrier-synchronized
//! training stalls on the *slowest* read of each iteration, so the
//! simulator records every access latency into an [`LatencyHistogram`] and
//! reports percentiles. (The `reproduce ablation` table uses this to show
//! where HVAC's remaining gap to XFS lives.)

use hvac_types::SimTime;

/// Log₂-bucketed latency histogram: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, latency: SimTime) {
        let ns = latency.as_nanos();
        let bucket = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (zero if empty).
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Largest sample.
    pub fn max(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime(self.max_ns)
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime(self.min_ns)
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper edge of the bucket
    /// containing the q-th sample (within 2× of the true value by
    /// construction).
    pub fn quantile(&self, q: f64) -> SimTime {
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64 * q).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return SimTime(upper.min(self.max_ns));
            }
        }
        SimTime(self.max_ns)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimTime::ZERO);
        assert_eq!(h.max(), SimTime::ZERO);
        assert_eq!(h.min(), SimTime::ZERO);
        assert_eq!(h.quantile(0.99), SimTime::ZERO);
    }

    #[test]
    fn mean_min_max_exact() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 300] {
            h.record(SimTime(ns));
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), SimTime(200));
        assert_eq!(h.min(), SimTime(100));
        assert_eq!(h.max(), SimTime(300));
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let mut h = LatencyHistogram::new();
        // 99 samples at ~1 us, 1 sample at ~1 ms.
        for _ in 0..99 {
            h.record(SimTime::from_micros(1));
        }
        h.record(SimTime::from_millis(1));
        let p50 = h.quantile(0.50).as_nanos();
        assert!((1_000..2_048).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).as_nanos();
        assert!(p99 < 1_000_000, "p99 {p99} should be in the 1 us cluster");
        let p100 = h.quantile(1.0).as_nanos();
        assert_eq!(p100, 1_000_000, "max is exact");
    }

    #[test]
    fn zero_latency_sample_is_handled() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), SimTime::ZERO);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimTime(100));
        b.record(SimTime(10_000));
        b.record(SimTime(50));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), SimTime(50));
        assert_eq!(a.max(), SimTime(10_000));
    }

    #[test]
    fn quantile_is_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..1000u64 {
            h.record(SimTime(i * 37));
        }
        let mut prev = SimTime::ZERO;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile not monotone at {q}");
            prev = v;
        }
    }
}
