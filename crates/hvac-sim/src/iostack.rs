//! The three I/O backends of the paper's evaluation.
//!
//! Every experiment in §IV compares training over:
//!
//! * **GPFS** ([`GpfsBackend`]) — every `<open, read, close>` hits the shared
//!   file system model,
//! * **XFS-on-NVMe** ([`XfsLocalBackend`]) — the dataset is pre-staged on
//!   every node's NVMe; the ideal upper bound (staging time is not charged,
//!   exactly as in the paper),
//! * **HVAC (i×1)** ([`HvacBackend`]) — hash placement over `nodes × i`
//!   server instances (using the *real* `hvac-hash` placement code), first
//!   reads fetched from the GPFS model and written to the home node's NVMe,
//!   cached reads served from NVMe and shipped over the NIC when remote.
//!
//! A backend answers "when does this file access complete?"; the training
//! driver (in `hvac-dl`) strings accesses into batches, epochs and jobs.

use crate::gpfs::GpfsModel;
use crate::resource::{FifoPool, FluidPipe, IopsGate};
use crate::stats::LatencyHistogram;
use hvac_hash::pathhash::mix64;
use hvac_hash::placement::{make_placement, Placement};
use hvac_storage::DeviceModel;
use hvac_types::{ByteSize, ClusterConfig, FileId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// One file access: a dataset sample identified by index, with its size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileAccess {
    /// Sample index within the dataset.
    pub index: u64,
    /// File size.
    pub size: ByteSize,
}

/// A simulated I/O backend.
pub trait IoBackend {
    /// Backend label for reports ("GPFS", "HVAC(4x1)", ...).
    fn label(&self) -> String;

    /// Complete one `<open, read, close>` of `file`, issued by a rank on
    /// `reader_node` at time `now`; returns the completion time.
    fn access(&mut self, now: SimTime, reader_node: u32, file: FileAccess) -> SimTime;

    /// Declare the entire dataset resident in the cache (used when the
    /// driver extrapolates epoch 1 instead of simulating every file).
    fn assume_all_cached(&mut self) {}

    /// Declare how many concurrent client processes drive this backend
    /// (lets the GPFS model account for token/lock contention).
    fn set_client_count(&mut self, _clients: u32) {}

    /// Client-side cost per request (interposition + RPC marshalling),
    /// spent serially in the rank's loader thread. Plain POSIX backends
    /// (GPFS, local XFS) pay only the syscall, folded into `access`.
    fn client_dispatch_ns(&self) -> u64 {
        0
    }

    /// Pre-populate the cache with the whole dataset (the paper's §IV-C
    /// future work: "utilizing prefetching techniques to pre-populate the
    /// HVAC cache and reduce the performance overhead of epoch-1").
    /// Returns when staging completes; a no-op for backends with nothing to
    /// stage (GPFS reads in place; XFS staging is uncharged, as in §IV-A3).
    fn prefetch_dataset(&mut self, now: SimTime, _n_files: u64, _total_bytes: ByteSize) -> SimTime {
        now
    }

    /// Distribution of individual access latencies observed so far.
    fn latency_histogram(&self) -> Option<&LatencyHistogram> {
        None
    }

    /// Kill a compute node mid-run (its NVMe contents become unreachable —
    /// the §III-H failure scenario). Backends without node state ignore it.
    fn inject_node_failure(&mut self, _node: u32) {}
}

/// Training I/O straight against the shared PFS.
pub struct GpfsBackend {
    gpfs: GpfsModel,
    hist: LatencyHistogram,
}

impl GpfsBackend {
    /// Build over a GPFS model.
    pub fn new(gpfs: GpfsModel) -> Self {
        Self {
            gpfs,
            hist: LatencyHistogram::new(),
        }
    }

    /// The underlying model (for load inspection).
    pub fn gpfs(&self) -> &GpfsModel {
        &self.gpfs
    }
}

impl IoBackend for GpfsBackend {
    fn label(&self) -> String {
        "GPFS".into()
    }

    fn access(&mut self, now: SimTime, _reader_node: u32, file: FileAccess) -> SimTime {
        let done = self.gpfs.open_read_close(now, file.size);
        self.hist.record(done.saturating_since(now));
        done
    }

    fn set_client_count(&mut self, clients: u32) {
        self.gpfs.set_client_count(clients);
    }

    fn latency_histogram(&self) -> Option<&LatencyHistogram> {
        Some(&self.hist)
    }
}

/// One node's NVMe device (shared by all ranks and server instances on it).
struct NodeDevice {
    pipe: FluidPipe,
    gate: IopsGate,
    op_latency: SimTime,
}

impl NodeDevice {
    fn new(model: &DeviceModel) -> Self {
        Self {
            pipe: FluidPipe::new(model.read_bandwidth),
            gate: IopsGate::new(model.max_iops),
            op_latency: model.op_latency,
        }
    }

    fn read(&mut self, now: SimTime, size: ByteSize) -> SimTime {
        let granted = self.gate.admit(now);
        self.pipe
            .admit(granted.saturating_add(self.op_latency), size)
    }

    fn write(&mut self, now: SimTime, size: ByteSize) -> SimTime {
        // Reads and writes share the device; we charge writes to the same
        // pipe (NVMe write bandwidth is lower, folded into service time).
        let granted = self.gate.admit(now);
        self.pipe
            .admit(granted.saturating_add(self.op_latency), size)
    }
}

/// The staged-dataset upper bound: every read is node-local.
pub struct XfsLocalBackend {
    nodes: Vec<NodeDevice>,
    hist: LatencyHistogram,
}

impl XfsLocalBackend {
    /// Build for `nodes` nodes with the given device model.
    pub fn new(nodes: u32, device: &DeviceModel) -> Self {
        Self {
            nodes: (0..nodes).map(|_| NodeDevice::new(device)).collect(),
            hist: LatencyHistogram::new(),
        }
    }

    /// Summit defaults.
    pub fn summit(nodes: u32) -> Self {
        Self::new(nodes, &DeviceModel::summit_nvme())
    }
}

impl IoBackend for XfsLocalBackend {
    fn label(&self) -> String {
        "XFS-on-NVMe".into()
    }

    fn access(&mut self, now: SimTime, reader_node: u32, file: FileAccess) -> SimTime {
        let done = self.nodes[reader_node as usize].read(now, file.size);
        self.hist.record(done.saturating_since(now));
        done
    }

    fn latency_histogram(&self) -> Option<&LatencyHistogram> {
        Some(&self.hist)
    }
}

/// Per-access statistics of the HVAC backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HvacSimStats {
    /// Accesses that triggered a PFS fetch (cold misses).
    pub first_reads: u64,
    /// Cache hits served from the reader's own node.
    pub local_hits: u64,
    /// Cache hits served from a remote node over the NIC.
    pub remote_hits: u64,
    /// Accesses served by a non-primary replica after a node failure.
    pub failover_reads: u64,
    /// Accesses whose every replica was on a failed node — with k=1 this is
    /// the paper's "failed training run" (§III-H); the model degrades to a
    /// GPFS re-fetch so the count is observable.
    pub lost_accesses: u64,
}

/// The HVAC (i×1) backend.
pub struct HvacBackend {
    label: String,
    nodes: u32,
    instances_per_node: u32,
    request_overhead: SimTime,
    net_latency: SimTime,
    placement: Box<dyn Placement>,
    gpfs: GpfsModel,
    devices: Vec<NodeDevice>,
    nics: Vec<FluidPipe>,
    instance_pools: Vec<FifoPool>,
    cached: HashSet<u64>,
    all_cached: bool,
    replication: u32,
    failed_nodes: HashSet<u32>,
    /// When set, forces a fraction of accesses to resolve to the reader's
    /// node (Fig. 13's L%/R% split) instead of hash placement.
    locality_split: Option<f64>,
    rng: StdRng,
    seed: u64,
    client_dispatch_ns: u64,
    hist: LatencyHistogram,
    write_bandwidth: hvac_types::Bandwidth,
    stats: HvacSimStats,
}

impl HvacBackend {
    /// Build from a cluster configuration (uses `cfg.hvac.instances_per_node`
    /// and the real placement implementation selected by `cfg.hvac.placement`).
    pub fn new(cfg: &ClusterConfig, seed: u64) -> Self {
        let device = DeviceModel::from_nvme_config(&cfg.nvme);
        let total_instances = cfg.total_servers();
        Self {
            label: format!("HVAC({}x1)", cfg.hvac.instances_per_node),
            nodes: cfg.nodes,
            instances_per_node: cfg.hvac.instances_per_node,
            request_overhead: SimTime::from_nanos(cfg.hvac.request_overhead_ns),
            net_latency: SimTime::from_nanos(cfg.network.latency_ns),
            placement: make_placement(cfg.hvac.placement),
            gpfs: GpfsModel::new(cfg.gpfs.clone()),
            devices: (0..cfg.nodes).map(|_| NodeDevice::new(&device)).collect(),
            nics: (0..cfg.nodes)
                .map(|_| FluidPipe::new(cfg.network.node_bandwidth))
                .collect(),
            instance_pools: (0..total_instances)
                .map(|_| FifoPool::new(cfg.hvac.movers_per_instance as usize))
                .collect(),
            cached: HashSet::new(),
            all_cached: false,
            replication: cfg.hvac.replication.max(1),
            failed_nodes: HashSet::new(),
            locality_split: None,
            rng: StdRng::seed_from_u64(seed),
            seed,
            client_dispatch_ns: cfg.hvac.client_dispatch_ns,
            hist: LatencyHistogram::new(),
            write_bandwidth: cfg.nvme.write_bandwidth,
            stats: HvacSimStats::default(),
        }
    }

    /// Force `local_fraction` of accesses to be served from the reader's own
    /// node (Fig. 13 manually controls dataset residency).
    pub fn with_locality_split(mut self, local_fraction: f64) -> Self {
        self.locality_split = Some(local_fraction.clamp(0.0, 1.0));
        self
    }

    /// Per-access statistics.
    pub fn stats(&self) -> HvacSimStats {
        self.stats
    }

    /// The embedded GPFS model (first-epoch traffic lands here).
    pub fn gpfs(&self) -> &GpfsModel {
        &self.gpfs
    }

    fn is_cached(&self, index: u64) -> bool {
        self.all_cached || self.cached.contains(&index)
    }

    fn home_of(&mut self, reader_node: u32, file: FileAccess) -> usize {
        if let Some(l) = self.locality_split {
            // Deterministic per-file coin derived from the seed keeps the
            // split stable across epochs (residency does not move).
            let coin = mix64(file.index ^ self.seed) as f64 / u64::MAX as f64;
            if coin < l {
                return (reader_node * self.instances_per_node) as usize;
            }
            // A uniformly random *remote* node's instance.
            let remote = if self.nodes <= 1 {
                0
            } else {
                let r = self.rng.gen_range(0..self.nodes - 1);
                if r >= reader_node {
                    r + 1
                } else {
                    r
                }
            };
            return (remote * self.instances_per_node) as usize;
        }
        let fid = FileId(mix64(file.index.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        self.placement
            .home(fid, (self.nodes * self.instances_per_node) as usize)
    }
}

impl IoBackend for HvacBackend {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn access(&mut self, now: SimTime, reader_node: u32, file: FileAccess) -> SimTime {
        let done = self.access_inner(now, reader_node, file);
        self.hist.record(done.saturating_since(now));
        done
    }

    fn set_client_count(&mut self, clients: u32) {
        // Only HVAC's first-epoch fetches hit GPFS, but they hit it with the
        // same client concurrency.
        self.gpfs.set_client_count(clients);
    }

    fn client_dispatch_ns(&self) -> u64 {
        self.client_dispatch_ns
    }

    fn assume_all_cached(&mut self) {
        self.all_cached = true;
    }

    /// Staged warm-up (paper §IV-C future work): every data mover pulls its
    /// share of the dataset from GPFS at full parallelism — no barriers, no
    /// interleaved compute — so staging is bounded by the slowest of: the
    /// MDS pool draining one open per file, the job's aggregate GPFS
    /// bandwidth, and each node writing its shard to NVMe.
    fn prefetch_dataset(&mut self, now: SimTime, n_files: u64, total_bytes: ByteSize) -> SimTime {
        let meta_secs = {
            // MDS pool throughput, including the overload factor baked into
            // the model via set_client_count (probe one op to learn it).
            let probe0 = self.gpfs.open(now);
            let service = probe0.saturating_since(now).as_secs_f64();
            let rpc = self.gpfs.config().rpc_latency_ns as f64 * 1e-9;
            let per_op = (service - rpc).max(1e-9);
            n_files as f64 * per_op / self.gpfs.config().mds_count as f64
        };
        let data_secs =
            total_bytes.as_f64() / self.gpfs.config().aggregate_bandwidth.as_bytes_per_sec();
        let write_secs =
            total_bytes.as_f64() / (self.write_bandwidth.as_bytes_per_sec() * self.nodes as f64);
        let staging = meta_secs.max(data_secs).max(write_secs);
        self.all_cached = true;
        self.stats.first_reads += n_files;
        now.saturating_add(SimTime::from_secs_f64(staging))
    }

    fn latency_histogram(&self) -> Option<&LatencyHistogram> {
        Some(&self.hist)
    }

    fn inject_node_failure(&mut self, node: u32) {
        self.failed_nodes.insert(node);
    }
}

impl HvacBackend {
    /// Replica instances of a file (home first), honoring the locality
    /// split when configured.
    fn replica_instances(&mut self, reader_node: u32, file: FileAccess) -> Vec<usize> {
        if self.replication <= 1 || self.locality_split.is_some() {
            return vec![self.home_of(reader_node, file)];
        }
        let fid = FileId(mix64(file.index.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        self.placement.replicas(
            fid,
            (self.nodes * self.instances_per_node) as usize,
            self.replication as usize,
        )
    }

    fn access_inner(&mut self, now: SimTime, reader_node: u32, file: FileAccess) -> SimTime {
        // Pick the first replica on a live node (client fail-over, §III-H).
        let replicas = self.replica_instances(reader_node, file);
        let chosen = replicas.iter().copied().find(|&inst| {
            let node = inst as u32 / self.instances_per_node;
            !self.failed_nodes.contains(&node)
        });
        let instance = match chosen {
            Some(inst) => {
                if inst != replicas[0] {
                    self.stats.failover_reads += 1;
                }
                inst
            }
            None => {
                // Every replica is gone: with k=1 this kills the run on real
                // hardware; the model degrades to a PFS re-fetch so the
                // experiment can count the damage.
                self.stats.lost_accesses += 1;
                return self.gpfs.open_read_close(now, file.size);
            }
        };
        self.access_at_instance(now, reader_node, file, instance, &replicas)
    }

    fn access_at_instance(
        &mut self,
        now: SimTime,
        reader_node: u32,
        file: FileAccess,
        instance: usize,
        replicas: &[usize],
    ) -> SimTime {
        let home_node = (instance as u32) / self.instances_per_node;
        let remote = home_node != reader_node;

        // Client -> server RPC hop.
        let arrive = if remote {
            now.saturating_add(self.net_latency)
        } else {
            now
        };
        // Request processing / data-mover capacity of the instance: this is
        // what HVAC (2x1)/(4x1) scale up.
        let processed = self.instance_pools[instance].admit(arrive, self.request_overhead);

        let served = if self.is_cached(file.index) {
            // Cached read: node-local NVMe of the home node.
            if reader_node == home_node {
                self.stats.local_hits += 1;
            } else {
                self.stats.remote_hits += 1;
            }
            self.devices[home_node as usize].read(processed, file.size)
        } else {
            // First read (§III-D): fetch from GPFS, write to NVMe, serve
            // from the fresh copy (still in memory). With replication, the
            // copy is also pushed to the other replicas' NVMe over their
            // NICs (§III-H's "data replication within the allocation").
            self.cached.insert(file.index);
            self.stats.first_reads += 1;
            let fetched = self.gpfs.open_read_close(processed, file.size);
            let written = self.devices[home_node as usize].write(fetched, file.size);
            for &replica in replicas.iter().skip(1) {
                let rnode = replica as u32 / self.instances_per_node;
                let shipped = self.nics[home_node as usize]
                    .admit(fetched, file.size)
                    .saturating_add(self.net_latency);
                self.devices[rnode as usize].write(shipped, file.size);
            }
            written
        };

        // Bulk transfer back to the reader.
        if remote {
            self.nics[home_node as usize]
                .admit(served, file.size)
                .saturating_add(self.net_latency)
        } else {
            served
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(i: u64, kib: u64) -> FileAccess {
        FileAccess {
            index: i,
            size: ByteSize::kib(kib),
        }
    }

    fn hvac_cfg(nodes: u32, instances: u32) -> ClusterConfig {
        let mut cfg = ClusterConfig::with_nodes(nodes);
        cfg.hvac.instances_per_node = instances;
        cfg
    }

    #[test]
    fn labels() {
        assert_eq!(GpfsBackend::new(GpfsModel::summit()).label(), "GPFS");
        assert_eq!(XfsLocalBackend::summit(2).label(), "XFS-on-NVMe");
        assert_eq!(HvacBackend::new(&hvac_cfg(2, 4), 1).label(), "HVAC(4x1)");
    }

    #[test]
    fn xfs_nodes_are_independent() {
        let mut b = XfsLocalBackend::summit(2);
        let t0 = b.access(SimTime::ZERO, 0, acc(1, 163));
        let t1 = b.access(SimTime::ZERO, 1, acc(2, 163));
        assert_eq!(t0, t1, "different nodes must not queue on each other");
        // Same node queues.
        let t2 = b.access(SimTime::ZERO, 0, acc(3, 163));
        assert!(t2 > t0);
    }

    #[test]
    fn hvac_first_read_is_slower_than_cached_read() {
        let mut b = HvacBackend::new(&hvac_cfg(4, 1), 7);
        let first = b.access(SimTime::ZERO, 0, acc(42, 163));
        let again = b.access(first, 0, acc(42, 163));
        assert!(
            first.as_nanos() > (again - first).as_nanos(),
            "first read {first} must cost more than cached {again}"
        );
        let s = b.stats();
        assert_eq!(s.first_reads, 1);
        assert_eq!(s.local_hits + s.remote_hits, 1);
    }

    #[test]
    fn hvac_second_epoch_avoids_gpfs() {
        let mut b = HvacBackend::new(&hvac_cfg(4, 1), 7);
        let mut t = SimTime::ZERO;
        for i in 0..100 {
            t = b.access(t, (i % 4) as u32, acc(i, 163));
        }
        let gpfs_opens_epoch1 = b.gpfs().opens();
        assert_eq!(gpfs_opens_epoch1, 100);
        for i in 0..100 {
            t = b.access(t, ((i + 1) % 4) as u32, acc(i, 163));
        }
        assert_eq!(b.gpfs().opens(), 100, "epoch 2 never touched GPFS");
        assert_eq!(b.stats().first_reads, 100);
        assert_eq!(b.stats().local_hits + b.stats().remote_hits, 100);
    }

    #[test]
    fn assume_all_cached_skips_first_reads() {
        let mut b = HvacBackend::new(&hvac_cfg(2, 1), 3);
        b.assume_all_cached();
        b.access(SimTime::ZERO, 0, acc(5, 163));
        assert_eq!(b.stats().first_reads, 0);
        assert_eq!(b.gpfs().opens(), 0);
    }

    #[test]
    fn more_instances_reduce_queueing() {
        // Saturate one node's servers with simultaneous cached reads; the
        // 4x1 variant must finish no later than the 1x1 variant.
        let finish = |instances: u32| {
            let mut b = HvacBackend::new(&hvac_cfg(1, instances), 5);
            b.assume_all_cached();
            let mut last = SimTime::ZERO;
            for i in 0..1000 {
                let done = b.access(SimTime::ZERO, 0, acc(i, 32));
                if done > last {
                    last = done;
                }
            }
            last
        };
        let one = finish(1);
        let four = finish(4);
        assert!(four < one, "4x1 {four} should beat 1x1 {one}");
    }

    #[test]
    fn locality_split_controls_remote_fraction() {
        for (l, _r) in [(1.0, 0.0), (0.5, 0.5), (0.0, 1.0)] {
            let mut b = HvacBackend::new(&hvac_cfg(8, 1), 11).with_locality_split(l);
            b.assume_all_cached();
            let mut t = SimTime::ZERO;
            for i in 0..2000 {
                t = b.access(t, 0, acc(i, 163));
            }
            let s = b.stats();
            let local_frac = s.local_hits as f64 / (s.local_hits + s.remote_hits) as f64;
            assert!(
                (local_frac - l).abs() < 0.06,
                "L={l}: measured local fraction {local_frac}"
            );
        }
    }

    #[test]
    fn prefetch_marks_everything_cached_and_costs_time() {
        let mut b = HvacBackend::new(&hvac_cfg(8, 1), 3);
        let staged = b.prefetch_dataset(SimTime::ZERO, 10_000, ByteSize(10_000 * 163_000));
        assert!(staged > SimTime::ZERO, "staging takes time");
        // Everything is now a cache hit — GPFS untouched by reads.
        let opens_after_staging = b.gpfs().opens();
        b.access(staged, 0, acc(42, 163));
        assert_eq!(b.gpfs().opens(), opens_after_staging);
        assert_eq!(b.stats().local_hits + b.stats().remote_hits, 1);
    }

    #[test]
    fn latency_histograms_record_accesses() {
        let mut b = HvacBackend::new(&hvac_cfg(2, 1), 5);
        let mut t = SimTime::ZERO;
        for i in 0..50 {
            t = b.access(t, 0, acc(i, 163));
        }
        let h = b.latency_histogram().expect("hvac records latencies");
        assert_eq!(h.count(), 50);
        assert!(h.quantile(0.5) > SimTime::ZERO);
        // First reads (PFS fetch) dominate the tail vs cached reads.
        assert!(h.max() >= h.min());

        let mut x = XfsLocalBackend::summit(2);
        x.access(SimTime::ZERO, 0, acc(1, 163));
        assert_eq!(x.latency_histogram().unwrap().count(), 1);

        let mut g = GpfsBackend::new(GpfsModel::summit());
        g.access(SimTime::ZERO, 0, acc(1, 163));
        assert_eq!(g.latency_histogram().unwrap().count(), 1);
    }

    #[test]
    fn node_failure_without_replication_loses_accesses() {
        let mut b = HvacBackend::new(&hvac_cfg(4, 1), 9);
        let mut t = SimTime::ZERO;
        for i in 0..100 {
            t = b.access(t, (i % 4) as u32, acc(i, 163));
        }
        b.inject_node_failure(1);
        for i in 0..100 {
            t = b.access(t, (i % 4) as u32, acc(i, 163));
        }
        let s = b.stats();
        assert!(s.lost_accesses > 0, "files homed on node 1 are gone: {s:?}");
        assert_eq!(s.failover_reads, 0, "k=1 has nowhere to fail over");
    }

    #[test]
    fn node_failure_with_replication_fails_over() {
        let mut cfg = hvac_cfg(4, 1);
        cfg.hvac.replication = 2;
        let mut b = HvacBackend::new(&cfg, 9);
        let mut t = SimTime::ZERO;
        for i in 0..100 {
            t = b.access(t, (i % 4) as u32, acc(i, 163));
        }
        b.inject_node_failure(1);
        for i in 0..100 {
            t = b.access(t, (i % 4) as u32, acc(i, 163));
        }
        let s = b.stats();
        assert_eq!(s.lost_accesses, 0, "k=2 must mask one node failure: {s:?}");
        assert!(s.failover_reads > 0, "node-1 homes must have failed over");
    }

    #[test]
    fn replication_costs_extra_first_epoch_work() {
        let run = |k: u32| {
            let mut cfg = hvac_cfg(4, 1);
            cfg.hvac.replication = k;
            let mut b = HvacBackend::new(&cfg, 3);
            let mut last = SimTime::ZERO;
            for i in 0..200 {
                let done = b.access(SimTime::ZERO, (i % 4) as u32, acc(i, 2500));
                if done > last {
                    last = done;
                }
            }
            last
        };
        // k=2 ships every file to a second NVMe: the cold storm takes longer.
        assert!(run(2) > run(1));
    }

    #[test]
    fn remote_reads_cost_more_than_local() {
        let mut local = HvacBackend::new(&hvac_cfg(4, 1), 2).with_locality_split(1.0);
        let mut remote = HvacBackend::new(&hvac_cfg(4, 1), 2).with_locality_split(0.0);
        local.assume_all_cached();
        remote.assume_all_cached();
        let tl = local.access(SimTime::ZERO, 0, acc(1, 163));
        let tr = remote.access(SimTime::ZERO, 0, acc(1, 163));
        assert!(tr > tl);
        // ...but only slightly (Fig. 13: negligible at 25 GB/s NIC).
        assert!(
            tr.as_secs_f64() / tl.as_secs_f64() < 1.5,
            "remote {tr} vs local {tl} should be close"
        );
    }
}
