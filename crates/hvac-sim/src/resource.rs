//! Virtual-time resources.
//!
//! A resource answers one question: *given a request arriving at `now`, when
//! does it complete?* — updating its internal occupancy as a side effect.
//! Requests must be presented in non-decreasing arrival order (the event
//! engine guarantees this).
//!
//! * [`FifoPool`] — `k` identical servers, non-preemptive FIFO (exact).
//!   Models GPFS metadata servers and HVAC data-mover pools.
//! * [`FluidPipe`] — a shared link of capacity `B` bytes/s modeled with
//!   virtual finish times (exact for a saturated FIFO link). Models
//!   aggregate GPFS bandwidth, per-node NVMe and NIC bandwidth.
//! * [`IopsGate`] — enforces a minimum spacing between operations (device
//!   IOPS ceilings).

use hvac_types::{Bandwidth, ByteSize, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// `k`-server FIFO queue with caller-supplied service times.
#[derive(Debug, Clone)]
pub struct FifoPool {
    free_at: BinaryHeap<Reverse<SimTime>>,
    busy_ns: u128,
    requests: u64,
}

impl FifoPool {
    /// A pool of `servers` identical servers, all free at time zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a pool needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        Self {
            free_at,
            busy_ns: 0,
            requests: 0,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Admit a request arriving at `now` needing `service` time; returns its
    /// completion time.
    pub fn admit(&mut self, now: SimTime, service: SimTime) -> SimTime {
        // `new` asserts servers > 0 and admit always pushes back what it
        // pops, so the heap can never be empty; `now` is a safe identity
        // fallback (a free server starts the request immediately).
        let earliest = self.free_at.pop().map_or(now, |Reverse(t)| t);
        let start = if earliest > now { earliest } else { now };
        let done = start.saturating_add(service);
        self.free_at.push(Reverse(done));
        self.busy_ns += service.as_nanos() as u128;
        self.requests += 1;
        done
    }

    /// Total requests admitted.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Aggregate busy time across servers (for utilization reports).
    pub fn busy(&self) -> SimTime {
        SimTime(self.busy_ns.min(u64::MAX as u128) as u64)
    }
}

/// A shared bandwidth link with virtual finish times.
#[derive(Debug, Clone)]
pub struct FluidPipe {
    bandwidth: Bandwidth,
    backlog_until: SimTime,
    bytes: u64,
}

impl FluidPipe {
    /// A pipe of the given capacity.
    pub fn new(bandwidth: Bandwidth) -> Self {
        Self {
            bandwidth,
            backlog_until: SimTime::ZERO,
            bytes: 0,
        }
    }

    /// The configured capacity.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Admit a transfer of `size` arriving at `now`; returns completion.
    pub fn admit(&mut self, now: SimTime, size: ByteSize) -> SimTime {
        let start = if self.backlog_until > now {
            self.backlog_until
        } else {
            now
        };
        let xfer = SimTime::from_secs_f64(self.bandwidth.transfer_secs(size));
        let done = start.saturating_add(xfer);
        self.backlog_until = done;
        self.bytes += size.bytes();
        done
    }

    /// Total bytes admitted.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// When the current backlog drains.
    pub fn backlog_until(&self) -> SimTime {
        self.backlog_until
    }
}

/// Minimum-spacing gate (an IOPS ceiling).
#[derive(Debug, Clone)]
pub struct IopsGate {
    interval: SimTime,
    next_free: SimTime,
}

impl IopsGate {
    /// A gate admitting at most `max_iops` operations per second
    /// (`max_iops == 0` disables the gate).
    pub fn new(max_iops: u64) -> Self {
        let interval = match 1_000_000_000u64.checked_div(max_iops) {
            None => SimTime::ZERO,
            Some(ns) => SimTime::from_nanos(ns),
        };
        Self {
            interval,
            next_free: SimTime::ZERO,
        }
    }

    /// Admit an operation arriving at `now`; returns when it may proceed.
    pub fn admit(&mut self, now: SimTime) -> SimTime {
        let grant = if self.next_free > now {
            self.next_free
        } else {
            now
        };
        self.next_free = grant.saturating_add(self.interval);
        grant
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_server_serializes() {
        let mut pool = FifoPool::new(1);
        assert_eq!(pool.admit(t(0), t(2)), t(2));
        assert_eq!(pool.admit(t(0), t(2)), t(4)); // queued behind
        assert_eq!(pool.admit(t(10), t(1)), t(11)); // idle gap
        assert_eq!(pool.requests(), 3);
        assert_eq!(pool.busy(), t(5));
    }

    #[test]
    fn k_servers_run_in_parallel_then_queue() {
        let mut pool = FifoPool::new(3);
        for _ in 0..3 {
            assert_eq!(pool.admit(t(0), t(5)), t(5));
        }
        // 4th request waits for the earliest server.
        assert_eq!(pool.admit(t(0), t(5)), t(10));
    }

    #[test]
    fn pool_throughput_saturates_at_k_over_s() {
        // Offered load of 1000 requests at t=0, 32 servers, 1 ms service:
        // makespan = ceil(1000/32) * 1 ms.
        let mut pool = FifoPool::new(32);
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            last = pool.admit(SimTime::ZERO, SimTime::from_millis(1));
        }
        assert_eq!(last, SimTime::from_millis(32)); // ceil(1000/32)=32 rounds
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_pool_panics() {
        FifoPool::new(0);
    }

    #[test]
    fn fluid_pipe_serializes_backlog() {
        let mut pipe = FluidPipe::new(Bandwidth::bytes_per_sec(1000.0));
        assert_eq!(pipe.admit(t(0), ByteSize(1000)), t(1));
        assert_eq!(pipe.admit(t(0), ByteSize(2000)), t(3));
        // After the backlog drains, transfers start on arrival.
        assert_eq!(
            pipe.admit(t(10), ByteSize(500)),
            SimTime::from_millis(10_500)
        );
        assert_eq!(pipe.bytes(), 3500);
    }

    #[test]
    fn fluid_pipe_aggregate_rate_is_exact_under_saturation() {
        // 1 GB offered instantaneously over a 100 MB/s pipe: 10 s makespan.
        let mut pipe = FluidPipe::new(Bandwidth::bytes_per_sec(100e6));
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            last = pipe.admit(SimTime::ZERO, ByteSize(1_000_000));
        }
        assert!((last.as_secs_f64() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn iops_gate_spacing() {
        let mut gate = IopsGate::new(1000); // 1 ms spacing
        assert_eq!(gate.admit(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(gate.admit(SimTime::ZERO), SimTime::from_millis(1));
        assert_eq!(gate.admit(SimTime::ZERO), SimTime::from_millis(2));
        // A late arrival resets the window.
        assert_eq!(gate.admit(t(1)), t(1));
    }

    #[test]
    fn disabled_iops_gate_is_transparent() {
        let mut gate = IopsGate::new(0);
        for _ in 0..5 {
            assert_eq!(gate.admit(t(2)), t(2));
        }
    }
}
