//! Discrete-event simulation of HVAC at supercomputer scale.
//!
//! The paper's headline experiments run on 1,024 Summit nodes. We cannot
//! rent Summit, but the experiments measure *queueing* — metadata servers
//! melting under millions of small opens (Fig. 3), bandwidth saturating
//! under large reads (Fig. 4), data movers absorbing first-epoch copies
//! (Fig. 11) — and queueing simulates faithfully. This crate provides:
//!
//! * [`engine`] — a classical event-heap simulator over a user world type,
//! * [`resource`] — virtual-time resources: multi-server FIFO pools, fluid
//!   bandwidth pipes, IOPS gates (completion times are computed
//!   arithmetically; the event heap orders process steps),
//! * [`gpfs`] — the GPFS/Alpine model: MDS pool + token costs + striped
//!   aggregate bandwidth, calibrated from §II-C/§IV-A,
//! * [`iostack`] — the three I/O backends of the evaluation: `GpfsBackend`,
//!   `XfsLocalBackend` (staged node-local data, the upper bound) and
//!   `HvacBackend` (i×1 instances, hash placement via the *real*
//!   `hvac-hash` code, data-mover queues, first-read copies),
//! * [`mdtest`] — the MDTest storm used for Figs. 3 and 4.
//!
//! All randomness comes from seeded [`rand::rngs::StdRng`]; simulations are
//! bit-reproducible.

pub mod engine;
pub mod gpfs;
pub mod iostack;
pub mod mdtest;
pub mod resource;
pub mod stats;

pub use engine::Engine;
pub use gpfs::GpfsModel;
pub use iostack::{GpfsBackend, HvacBackend, IoBackend, XfsLocalBackend};
pub use mdtest::{run_mdtest, MdtestConfig, MdtestResult};
pub use resource::{FifoPool, FluidPipe, IopsGate};
pub use stats::LatencyHistogram;
