//! Lock-order detection exercised through the public API, the way the
//! workspace's crates use it: real `OrderedMutex` values locked from real
//! threads, not the internal order-graph helpers.
//!
//! The order graph is global to the process and keyed by class name, so
//! every test here uses its own class-name namespace.

use hvac_sync::{OrderedMutex, OrderedRwLock};
use proptest::prelude::*;
use std::sync::Arc;

/// Two threads taking two classes in opposite orders: the second thread's
/// inner acquisition closes a cycle in the class graph and must panic —
/// naming both classes — *instead of* deadlocking at runtime.
#[test]
#[cfg(debug_assertions)]
fn inverted_pair_across_threads_is_detected() {
    let a = Arc::new(OrderedMutex::new("test.it.inv.a", ()));
    let b = Arc::new(OrderedMutex::new("test.it.inv.b", ()));

    // Establish a → b on one thread.
    {
        let (a, b) = (a.clone(), b.clone());
        std::thread::spawn(move || {
            let _ga = a.lock();
            let _gb = b.lock();
        })
        .join()
        .expect("forward order is legal");
    }

    // b → a on another thread must be flagged before the lock is taken.
    let err = std::thread::spawn(move || {
        let _gb = b.lock();
        let _ga = a.lock();
    })
    .join()
    .expect_err("inverted order must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_else(|| {
        err.downcast_ref::<&str>()
            .map(|s| s.to_string())
            .unwrap_or_default()
    });
    assert!(msg.contains("test.it.inv.a"), "panic names class a: {msg}");
    assert!(msg.contains("test.it.inv.b"), "panic names class b: {msg}");
}

/// RwLock read acquisitions participate in ordering exactly like writes.
#[test]
#[cfg(debug_assertions)]
fn rwlock_reads_participate_in_cycle_detection() {
    let a = Arc::new(OrderedRwLock::new("test.it.rwinv.a", ()));
    let b = Arc::new(OrderedMutex::new("test.it.rwinv.b", ()));
    {
        let (a, b) = (a.clone(), b.clone());
        std::thread::spawn(move || {
            let _ga = a.read();
            let _gb = b.lock();
        })
        .join()
        .expect("forward order is legal");
    }
    assert!(
        std::thread::spawn(move || {
            let _gb = b.lock();
            let _ga = a.read();
        })
        .join()
        .is_err(),
        "read-lock inversion must be detected"
    );
}

/// A panic while holding a guard poisons the std lock underneath; the
/// wrapper recovers and later acquisitions — including ordered nested
/// ones — keep working.
#[test]
fn poison_recovery_keeps_ordered_nesting_usable() {
    let outer = Arc::new(OrderedMutex::new("test.it.poison.outer", 0u32));
    let inner = Arc::new(OrderedMutex::new("test.it.poison.inner", 0u32));
    let (o, i) = (outer.clone(), inner.clone());
    let _ = std::thread::spawn(move || {
        let _go = o.lock();
        let _gi = i.lock();
        panic!("die holding both");
    })
    .join();
    // Both locks recovered; the established outer → inner order still holds.
    *outer.lock() += 1;
    *inner.lock() += 1;
    let _go = outer.lock();
    let _gi = inner.lock();
    assert_eq!(*_go + *_gi, 2);
}

const PROP_CLASSES: [&str; 8] = [
    "test.it.prop.l0",
    "test.it.prop.l1",
    "test.it.prop.l2",
    "test.it.prop.l3",
    "test.it.prop.l4",
    "test.it.prop.l5",
    "test.it.prop.l6",
    "test.it.prop.l7",
];

proptest! {
    /// Any acquisition sequence that respects one global order (ascending
    /// class index here) is acyclic by construction, so the detector must
    /// never fire — across iterations and regardless of which subset of
    /// classes each iteration touches or how deep the nesting goes.
    #[test]
    fn random_acyclic_orders_never_false_positive(
        picks in proptest::collection::vec(0usize..PROP_CLASSES.len(), 0..8)
    ) {
        let mut order: Vec<usize> = picks;
        order.sort_unstable();
        order.dedup();
        let locks: Vec<OrderedMutex<u32>> = PROP_CLASSES
            .iter()
            .map(|c| OrderedMutex::new(c, 0))
            .collect();
        let mut guards = Vec::with_capacity(order.len());
        for &i in &order {
            guards.push(locks[i].lock());
        }
        prop_assert_eq!(guards.len(), order.len());
    }
}
