//! Debug-build lock-order registry.
//!
//! Lock classes are nodes in a global directed graph; observing class `A`
//! held while acquiring class `B` inserts edge `A → B`. A cycle in that
//! graph means two code paths acquire some pair of classes in opposite
//! orders — a potential deadlock — so edge insertion runs a reachability
//! check first and panics with the offending pair and the established
//! path. The graph is cumulative across the whole process (tests included),
//! which is the point: any two code paths ever observed disagreeing on
//! order are reported, even if they never ran concurrently.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, OnceLock};

type Graph = HashMap<&'static str, HashSet<&'static str>>;

fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(HashMap::new()))
}

thread_local! {
    /// Classes currently held by this thread, acquisition order.
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Find a path `from → … → to` in the graph, if one exists.
fn find_path(graph: &Graph, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
    let mut stack = vec![vec![from]];
    let mut visited = HashSet::new();
    visited.insert(from);
    while let Some(path) = stack.pop() {
        let Some(&last) = path.last() else { continue };
        if last == to {
            return Some(path);
        }
        if let Some(nexts) = graph.get(last) {
            for &n in nexts {
                if visited.insert(n) {
                    let mut p = path.clone();
                    p.push(n);
                    stack.push(p);
                }
            }
        }
    }
    None
}

/// Record `held → acquiring`; panics if the reverse order is already
/// established anywhere in the process.
fn add_edge_checked(held: &'static str, acquiring: &'static str) {
    let mut g = graph().lock().unwrap_or_else(|p| p.into_inner());
    if g.get(held).is_some_and(|s| s.contains(acquiring)) {
        return;
    }
    if let Some(path) = find_path(&g, acquiring, held) {
        drop(g); // don't poison the registry with this panic
        panic!(
            "lock-order cycle: acquiring '{acquiring}' while holding '{held}', \
             but the established order is {} -> (this acquisition would close the cycle). \
             Fix the caller to follow the canonical hierarchy in hvac_sync::classes.",
            path.join(" -> "),
        );
    }
    g.entry(held).or_default().insert(acquiring);
}

/// Snapshot of every `held → acquiring` edge the process has observed so
/// far, sorted for stable output. This is the runtime half of the
/// lock-graph conformance check: tests drive a workload, dump the edges,
/// and assert they are a subset of the static graph extracted by
/// `tools/tidy`'s lockgraph pass.
pub(crate) fn observed_edges() -> Vec<(&'static str, &'static str)> {
    let g = graph().lock().unwrap_or_else(|p| p.into_inner());
    let mut edges: Vec<(&'static str, &'static str)> = g
        .iter()
        .flat_map(|(&from, tos)| tos.iter().map(move |&to| (from, to)))
        .collect();
    edges.sort_unstable();
    edges
}

/// RAII record of one acquisition on this thread.
#[derive(Debug)]
pub(crate) struct AcquireToken {
    class: &'static str,
}

impl AcquireToken {
    /// Register an acquisition of `class` by the current thread, checking
    /// order against everything the thread already holds. Runs *before*
    /// the underlying lock is taken so inversions report instead of
    /// deadlocking.
    pub(crate) fn acquire(class: &'static str) -> Self {
        HELD.with(|held| {
            let snapshot: Vec<&'static str> = held.borrow().clone();
            for prev in snapshot {
                // Same-class nesting carries no order information; the
                // checker cannot rank instances within one class.
                if prev != class {
                    add_edge_checked(prev, class);
                }
            }
            held.borrow_mut().push(class);
        });
        Self { class }
    }
}

impl Drop for AcquireToken {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Remove the most recent entry for this class (guards can be
            // dropped out of acquisition order).
            if let Some(pos) = held.iter().rposition(|&c| c == self.class) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_acquisition_records_edge() {
        let _a = AcquireToken::acquire("test.order.outer");
        let _b = AcquireToken::acquire("test.order.inner");
        let g = graph().lock().unwrap_or_else(|p| p.into_inner());
        assert!(g["test.order.outer"].contains("test.order.inner"));
    }

    #[test]
    fn inversion_panics_with_pair() {
        {
            let _a = AcquireToken::acquire("test.inv.first");
            let _b = AcquireToken::acquire("test.inv.second");
        }
        // Opposite order on another thread: must panic, naming the pair.
        let err = std::thread::spawn(|| {
            let _b = AcquireToken::acquire("test.inv.second");
            let _a = AcquireToken::acquire("test.inv.first");
        })
        .join()
        .expect_err("inverted order must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("test.inv.first"), "message was: {msg}");
        assert!(msg.contains("test.inv.second"), "message was: {msg}");
    }

    #[test]
    fn release_unwinds_held_stack() {
        {
            let _a = AcquireToken::acquire("test.rel.a");
        }
        {
            // 'a' released above, so acquiring it under 'b' is a fresh edge
            // only if no b->a ordering existed; and a->b was never recorded.
            let _b = AcquireToken::acquire("test.rel.b");
            let _a = AcquireToken::acquire("test.rel.a");
        }
    }
}
