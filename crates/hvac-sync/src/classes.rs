//! Canonical lock-class labels for the HVAC workspace.
//!
//! The hierarchy, outermost first, is:
//!
//! ```text
//! rebalancer  →  view  →  fabric  →  server  →  cache  →  store
//! ```
//!
//! A thread may acquire classes left-to-right along this chain (skipping
//! levels is fine) but never right-to-left. Leaf classes — `CLIENT_FDS`,
//! `AGENT_FDS`, `FABRIC_THREADS`, `SERVER_THREADS` — are not expected to
//! nest inside anything below them. The debug-build order checker in this
//! crate turns any violation into an immediate panic naming the pair.

/// Rebalancer worker handle (`hvac-core::rebalance`). Outermost of all:
/// held only to spawn/join the migration worker, never while that worker's
/// own locks are in scope on the same thread.
pub const REBALANCER: &str = "core.rebalancer";

/// Current [`ClusterView`] slot (`hvac-core::view`). Acquired before any
/// fabric/server/store lock; holders snapshot the `Arc` and drop the guard
/// immediately — the view guard is never held across an RPC.
pub const VIEW: &str = "core.view";

/// RPC fabric endpoint registry (`hvac-net::fabric`). Outermost of the
/// original chain; nests inside `VIEW`/`REBALANCER` only.
pub const FABRIC_ENDPOINTS: &str = "net.fabric.endpoints";

/// Fabric server worker-thread list; held only briefly at spawn/join.
pub const FABRIC_THREADS: &str = "net.fabric.threads";

/// Fault-injection plan table (`hvac-net::fault`). Fabric level: consulted
/// at call time with no other lock held.
pub const FABRIC_FAULTS: &str = "net.fabric.faults";

/// Client per-replica health cache (`hvac-core::client`). Leaf: the guard
/// is always dropped before any RPC is issued.
pub const CLIENT_HEALTH: &str = "core.client.health";

/// One stripe of the data-mover in-flight table (`hvac-core::server`).
/// All stripes share this class: stripes of one table are interchangeable
/// for ordering purposes, and a thread never holds two stripes at once.
pub const SERVER_INFLIGHT_STRIPE: &str = "core.server.inflight_stripe";

/// Data-mover worker-thread list; held only briefly at spawn/join.
pub const SERVER_THREADS: &str = "core.server.threads";

/// Eviction policy state (`hvac-core::cache`). Nests inside server locks,
/// outside store locks.
pub const CACHE_POLICY: &str = "core.cache.policy";

/// One shard of the node-local store's striped entry map
/// (`hvac-storage::localstore`). Shard selection is by path hash, so a
/// thread holds at most one shard at a time (`purge` walks shards strictly
/// one-by-one). Innermost of the main chain except the device queue below.
pub const STORE_SHARD: &str = "storage.localstore.shard";

/// Per-shard simulated-device service queue (`hvac-storage::localstore`):
/// serializes read service times within a shard when a `DeviceModel` is
/// armed. Strictly innermost — nothing is ever acquired under it.
pub const STORE_DEVICE_QUEUE: &str = "storage.localstore.device_queue";

/// Simulated PFS file map (`hvac-pfs::memstore`); treated like a store.
pub const PFS_FILES: &str = "pfs.memstore.files";

/// Client fd table (`hvac-core::client`). Leaf: the guard is always
/// dropped before any RPC is issued.
pub const CLIENT_FDS: &str = "core.client.fds";

/// Preload agent fd table (`hvac-preload::agent`). Leaf.
pub const AGENT_FDS: &str = "preload.agent.fds";

/// Memoized consistent-hash rings (`hvac-hash::placement`). Leaf: held
/// only while building/cloning a ring, with no other HVAC lock in scope.
pub const HASH_RINGS: &str = "hash.placement.rings";
