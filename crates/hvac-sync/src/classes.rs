//! Canonical lock-class labels for the HVAC workspace.
//!
//! The hierarchy, outermost first, is:
//!
//! ```text
//! repair → rebalancer → view → fabric → sched → server → cache → tenant → store → device → pool
//! ```
//!
//! A thread may acquire classes left-to-right along this chain (skipping
//! levels is fine) but never right-to-left. Leaf classes — `CLIENT_FDS`,
//! `CLIENT_HEALTH`, `AGENT_FDS`, `FABRIC_THREADS`, `SERVER_THREADS`,
//! `HASH_RINGS`, `NET_SOCKET_POOL`, `NET_SOCKET_CONN`,
//! `NET_SOCKET_WRITER` — are never held while acquiring any other class. The
//! debug-build order checker in this crate turns any violation into an
//! immediate panic naming the pair, and the static verifier in
//! `tools/tidy` (`cargo run -p tidy -- lockgraph`) checks the same
//! [`HIERARCHY`] table against the source tree without running anything.

/// Repair scrubber worker handle (`hvac-core::repair`). Outermost of all:
/// held only to spawn/join the anti-entropy scrubber, never while that
/// worker's own locks are in scope on the same thread. Sits outside
/// `REBALANCER` because a repair pass may need to join a still-running
/// rebalance pass first.
pub const REPAIR: &str = "core.repair";

/// Rebalancer worker handle (`hvac-core::rebalance`). Held only to
/// spawn/join the migration worker, never while that worker's own locks
/// are in scope on the same thread.
pub const REBALANCER: &str = "core.rebalancer";

/// Current [`ClusterView`] slot (`hvac-core::view`). Acquired before any
/// fabric/server/store lock; holders snapshot the `Arc` and drop the guard
/// immediately — the view guard is never held across an RPC.
pub const VIEW: &str = "core.view";

/// RPC fabric endpoint registry (`hvac-net::fabric`). Outermost of the
/// original chain; nests inside `VIEW`/`REBALANCER` only.
pub const FABRIC_ENDPOINTS: &str = "net.fabric.endpoints";

/// Fabric server worker-thread list; held only briefly at spawn/join.
pub const FABRIC_THREADS: &str = "net.fabric.threads";

/// Fault-injection plan table (`hvac-net::fault`). Fabric level: consulted
/// at call time with no other lock held.
pub const FABRIC_FAULTS: &str = "net.fabric.faults";

/// Client per-replica health cache (`hvac-core::client`). Leaf: the guard
/// is always dropped before any RPC is issued.
pub const CLIENT_HEALTH: &str = "core.client.health";

/// Per-tenant weighted-fair scheduler state (`hvac-core::qos`): the deficit
/// round-robin queues and inflight counters of one server's admission gate.
/// Sits between the fabric and the server level — an RPC worker takes it on
/// the way into the read path, before any inflight stripe; the guard is
/// always dropped before blocking on a grant channel.
pub const SERVER_SCHED: &str = "core.server.sched";

/// One stripe of the data-mover in-flight table (`hvac-core::server`).
/// All stripes share this class: stripes of one table are interchangeable
/// for ordering purposes, and a thread never holds two stripes at once.
pub const SERVER_INFLIGHT_STRIPE: &str = "core.server.inflight_stripe";

/// Data-mover worker-thread list; held only briefly at spawn/join.
pub const SERVER_THREADS: &str = "core.server.threads";

/// Eviction policy state (`hvac-core::cache`). Nests inside server locks,
/// outside store locks.
pub const CACHE_POLICY: &str = "core.cache.policy";

/// Per-tenant byte accounting and quota table of the node-local store
/// (`hvac-storage::localstore`). Acquired on the way into an insert/remove,
/// strictly *before* the affected [`STORE_SHARD`] guard (cache → tenant →
/// store); never taken while a shard guard is held.
pub const STORE_TENANT: &str = "storage.localstore.tenant";

/// One shard of the node-local store's striped entry map
/// (`hvac-storage::localstore`). Shard selection is by path hash, so a
/// thread holds at most one shard at a time (`purge` walks shards strictly
/// one-by-one). Innermost of the main chain except the device queue below.
pub const STORE_SHARD: &str = "storage.localstore.shard";

/// Per-shard simulated-device service queue (`hvac-storage::localstore`):
/// serializes read service times within a shard when a `DeviceModel` is
/// armed. Strictly innermost — nothing is ever acquired under it.
pub const STORE_DEVICE_QUEUE: &str = "storage.localstore.device_queue";

/// Simulated PFS file map (`hvac-pfs::memstore`); treated like a store.
pub const PFS_FILES: &str = "pfs.memstore.files";

/// Client fd table (`hvac-core::client`). Leaf: the guard is always
/// dropped before any RPC is issued.
pub const CLIENT_FDS: &str = "core.client.fds";

/// Preload agent fd table (`hvac-preload::agent`). Leaf.
pub const AGENT_FDS: &str = "preload.agent.fds";

/// Memoized consistent-hash rings (`hvac-hash::placement`). Leaf: held
/// only while building/cloning a ring, with no other HVAC lock in scope.
pub const HASH_RINGS: &str = "hash.placement.rings";

/// Socket-transport per-destination connection pool (`hvac-net::socket`).
/// Leaf: looked up (or replaced) in a block of its own, dropped before the
/// connection is dialled or any frame moves.
pub const NET_SOCKET_POOL: &str = "net.socket.pool";

/// Socket-transport per-connection state: the pending-reply demux table on
/// the client side and the open-connection registry on the server side.
/// Leaf: insert/remove only, never held across a read, write, or send.
pub const NET_SOCKET_CONN: &str = "net.socket.conn";

/// Socket-transport write half of one connection: serializes whole frames
/// from concurrent callers. Leaf: held for exactly one frame write, with no
/// other HVAC lock in scope.
pub const NET_SOCKET_WRITER: &str = "net.socket.writer";

/// One size class of the reference-counted buffer pool
/// (`hvac-net::pool`): guards that class's slab free list for the push or
/// pop only. Innermost of the whole hierarchy — the pool is consulted from
/// arbitrarily deep in the read path (under a store shard during a
/// directory-backed read, inside frame decode on a socket reader) and
/// never acquires anything itself. All size classes share this label: a
/// thread touches exactly one free list per acquire/release.
pub const NET_POOL: &str = "net.pool.slab";

/// The lock hierarchy as data: levels ordered outermost-first, each level
/// listing the classes that live at it. A thread holding a class at level
/// `i` may acquire a class at level `j` only if `i < j` (strictly inward;
/// classes at the same level never nest — stripes and shards are
/// interchangeable, so same-class re-entry is already a runtime error).
///
/// This table is the single source of truth consumed by both enforcement
/// sides: the debug-build runtime checker validates observed acquisitions
/// against it, and `tools/tidy`'s lockgraph pass validates the static
/// acquisition edges extracted from source. Extending the hierarchy means
/// adding the new `pub const` above *and* placing it in exactly one level
/// here (or in [`LEAVES`]); the `hierarchy_covers_every_class` test and
/// the tidy pass both fail on a class left unplaced.
pub const HIERARCHY: &[(&str, &[&str])] = &[
    ("repair", &[REPAIR]),
    ("rebalancer", &[REBALANCER]),
    ("view", &[VIEW]),
    ("fabric", &[FABRIC_ENDPOINTS, FABRIC_FAULTS]),
    ("sched", &[SERVER_SCHED]),
    ("server", &[SERVER_INFLIGHT_STRIPE]),
    ("cache", &[CACHE_POLICY]),
    ("tenant", &[STORE_TENANT]),
    ("store", &[STORE_SHARD, PFS_FILES]),
    ("device", &[STORE_DEVICE_QUEUE]),
    ("pool", &[NET_POOL]),
];

/// Classes that never participate in nesting at all: acquired and released
/// with no other HVAC lock held on the thread, in either direction. Any
/// static or observed edge touching a leaf is a hierarchy violation.
pub const LEAVES: &[&str] = &[
    CLIENT_FDS,
    CLIENT_HEALTH,
    AGENT_FDS,
    FABRIC_THREADS,
    SERVER_THREADS,
    HASH_RINGS,
    NET_SOCKET_POOL,
    NET_SOCKET_CONN,
    NET_SOCKET_WRITER,
];

/// Every canonical class label, in declaration order: the leveled chain
/// from [`HIERARCHY`] followed by [`LEAVES`].
pub fn all() -> Vec<&'static str> {
    HIERARCHY
        .iter()
        .flat_map(|(_, classes)| classes.iter().copied())
        .chain(LEAVES.iter().copied())
        .collect()
}

/// Level index of `class` in [`HIERARCHY`] (0 = outermost), or `None` for
/// leaves and unknown labels.
pub fn level_of(class: &str) -> Option<usize> {
    HIERARCHY
        .iter()
        .position(|(_, classes)| classes.contains(&class))
}

/// Whether `outer` may be held while acquiring `inner` under the declared
/// hierarchy: both must be leveled (leaves never nest) and the levels must
/// be strictly increasing.
pub fn edge_allowed(outer: &str, inner: &str) -> bool {
    match (level_of(outer), level_of(inner)) {
        (Some(o), Some(i)) => o < i,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// The full list of `pub const` labels above, kept in one place so the
    /// coverage test fails loudly when a new const is added without a
    /// hierarchy placement.
    const DECLARED: &[&str] = &[
        REPAIR,
        REBALANCER,
        VIEW,
        FABRIC_ENDPOINTS,
        FABRIC_THREADS,
        FABRIC_FAULTS,
        CLIENT_HEALTH,
        SERVER_SCHED,
        SERVER_INFLIGHT_STRIPE,
        SERVER_THREADS,
        CACHE_POLICY,
        STORE_TENANT,
        STORE_SHARD,
        STORE_DEVICE_QUEUE,
        PFS_FILES,
        CLIENT_FDS,
        AGENT_FDS,
        HASH_RINGS,
        NET_SOCKET_POOL,
        NET_SOCKET_CONN,
        NET_SOCKET_WRITER,
        NET_POOL,
    ];

    #[test]
    fn labels_unique_and_non_empty() {
        let mut seen = BTreeSet::new();
        for label in DECLARED {
            assert!(!label.is_empty(), "empty class label");
            assert!(
                !label.starts_with("test.") && !label.starts_with("example."),
                "canonical class {label} uses a reserved prefix"
            );
            assert!(seen.insert(*label), "duplicate class label {label}");
        }
    }

    #[test]
    fn hierarchy_covers_every_class() {
        let placed: BTreeSet<&str> = all().into_iter().collect();
        for label in DECLARED {
            assert!(
                placed.contains(label),
                "class {label} is neither leveled in HIERARCHY nor listed in LEAVES"
            );
            let leveled = level_of(label).is_some();
            let leaf = LEAVES.contains(label);
            assert!(
                leveled ^ leaf,
                "class {label} must be in exactly one of HIERARCHY and LEAVES"
            );
        }
        assert_eq!(
            placed.len(),
            DECLARED.len(),
            "HIERARCHY/LEAVES mention a label not declared as a pub const"
        );
    }

    #[test]
    fn edge_rule_is_strictly_inward() {
        assert!(edge_allowed(REPAIR, REBALANCER));
        assert!(edge_allowed(REPAIR, STORE_SHARD));
        assert!(!edge_allowed(REBALANCER, REPAIR));
        assert!(edge_allowed(VIEW, STORE_SHARD));
        assert!(edge_allowed(SERVER_INFLIGHT_STRIPE, CACHE_POLICY));
        assert!(edge_allowed(CACHE_POLICY, STORE_SHARD));
        // The admission gate is taken before any read-path lock; the tenant
        // quota table nests between the policy and the shards.
        assert!(edge_allowed(SERVER_SCHED, SERVER_INFLIGHT_STRIPE));
        assert!(edge_allowed(SERVER_SCHED, STORE_SHARD));
        assert!(!edge_allowed(SERVER_INFLIGHT_STRIPE, SERVER_SCHED));
        assert!(edge_allowed(CACHE_POLICY, STORE_TENANT));
        assert!(edge_allowed(STORE_TENANT, STORE_SHARD));
        assert!(!edge_allowed(STORE_SHARD, STORE_TENANT));
        assert!(!edge_allowed(STORE_SHARD, CACHE_POLICY));
        assert!(!edge_allowed(STORE_SHARD, STORE_SHARD));
        // The buffer pool is innermost: reachable from under any leveled
        // class, never the other way around.
        assert!(edge_allowed(STORE_SHARD, NET_POOL));
        assert!(edge_allowed(STORE_DEVICE_QUEUE, NET_POOL));
        assert!(!edge_allowed(NET_POOL, STORE_SHARD));
        // Same level never nests.
        assert!(!edge_allowed(STORE_SHARD, PFS_FILES));
        // Leaves never nest in either direction.
        assert!(!edge_allowed(CLIENT_FDS, STORE_SHARD));
        assert!(!edge_allowed(VIEW, CLIENT_FDS));
    }
}
