//! Lock-order-checked synchronization primitives for the HVAC workspace.
//!
//! [`OrderedMutex`] and [`OrderedRwLock`] wrap the std primitives with two
//! extra guarantees:
//!
//! 1. **Poison recovery.** A thread panicking while holding a lock never
//!    cascades: subsequent acquisitions recover the inner value instead of
//!    returning `Err`/panicking. HVAC servers keep serving after a worker
//!    dies mid-epoch.
//! 2. **Lock-order checking** (debug/test builds only). Every lock carries
//!    a `&'static str` *class* label. Acquisitions are recorded in a global
//!    class-order graph; acquiring a lock that closes a cycle in that graph
//!    — i.e. two threads could deadlock by taking the same pair of classes
//!    in opposite orders — panics immediately, naming the offending pair
//!    and the established order path. In release builds all bookkeeping
//!    compiles away and the wrappers are passthroughs.
//!
//! The canonical class hierarchy for this workspace (outermost first) is
//! `rebalancer → view → fabric → server → cache → store → device`; the
//! [`classes::HIERARCHY`] table is the machine-readable source of truth.
//! See DESIGN.md §"Concurrency invariants & lock hierarchy".
//!
//! ```
//! use hvac_sync::OrderedMutex;
//! let m = OrderedMutex::new("example.counter", 0u32);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 1);
//! ```

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub mod classes;

#[cfg(debug_assertions)]
mod order;

#[cfg(debug_assertions)]
use order::AcquireToken;

/// In release builds acquisition tracking is a zero-sized no-op.
#[cfg(not(debug_assertions))]
#[derive(Debug)]
struct AcquireToken;

#[cfg(not(debug_assertions))]
impl AcquireToken {
    #[inline(always)]
    fn acquire(_class: &'static str) -> Self {
        AcquireToken
    }
}

/// Dump every `outer → inner` class-acquisition edge this process has
/// observed so far, sorted. Debug builds only report real data; in release
/// builds tracking is compiled out and the dump is always empty.
///
/// This is the runtime half of the lock-graph conformance check (see
/// DESIGN.md §"Static lock-graph verification"): a workload runs, the
/// observed edges are dumped, and the test asserts they are a subset of
/// the static edge set `cargo run -p tidy -- lockgraph` extracts from
/// source — any observed-but-not-static edge means the static model (or an
/// annotation) is stale.
///
/// ```
/// use hvac_sync::OrderedMutex;
/// let outer = OrderedMutex::new("example.dump.outer", ());
/// let inner = OrderedMutex::new("example.dump.inner", ());
/// let _o = outer.lock();
/// let _i = inner.lock();
/// # #[cfg(debug_assertions)]
/// assert!(hvac_sync::dump_observed_edges()
///     .contains(&("example.dump.outer", "example.dump.inner")));
/// ```
#[cfg(debug_assertions)]
pub fn dump_observed_edges() -> Vec<(&'static str, &'static str)> {
    order::observed_edges()
}

/// Release builds compile the tracker out; the dump is always empty.
#[cfg(not(debug_assertions))]
pub fn dump_observed_edges() -> Vec<(&'static str, &'static str)> {
    Vec::new()
}

/// A mutex whose acquisitions are checked against the global lock-order
/// graph in debug builds and which recovers from poisoning in all builds.
pub struct OrderedMutex<T: ?Sized> {
    class: &'static str,
    inner: sync::Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wrap `value` under the lock-order class `class`.
    ///
    /// `class` names the lock's position in the hierarchy, not the
    /// individual instance: all locks of one class are interchangeable for
    /// ordering purposes. First-party code must pass a [`classes`]
    /// constant (the tidy lockgraph lint enforces this); tests and doc
    /// examples use ad-hoc labels under the `test.` / `example.` prefixes,
    /// e.g. `"example.counter"`.
    pub fn new(class: &'static str, value: T) -> Self {
        Self {
            class,
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value (poison-recovering).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// Acquire the lock, blocking. Panics in debug builds if this
    /// acquisition inverts the established lock order; recovers the inner
    /// value if a previous holder panicked.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let token = AcquireToken::acquire(self.class);
        let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        OrderedMutexGuard {
            guard,
            _token: token,
        }
    }

    /// Attempt the lock without blocking. Returns `None` if another thread
    /// holds it right now (the caller may fall back to [`Self::lock`] and,
    /// e.g., count the contention event). Order checking and poison
    /// recovery apply exactly as in [`Self::lock`]; a failed attempt leaves
    /// the order graph untouched beyond the (legitimate) intent edge.
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        let token = AcquireToken::acquire(self.class);
        match self.inner.try_lock() {
            Ok(guard) => Some(OrderedMutexGuard {
                guard,
                _token: token,
            }),
            Err(sync::TryLockError::Poisoned(p)) => Some(OrderedMutexGuard {
                guard: p.into_inner(),
                _token: token,
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// The lock's class label.
    pub fn class(&self) -> &'static str {
        self.class
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("OrderedMutex");
        s.field("class", &self.class);
        match self.inner.try_lock() {
            Ok(guard) => s.field("data", &&*guard),
            Err(_) => s.field("data", &"<locked>"),
        };
        s.finish()
    }
}

/// Guard for [`OrderedMutex`]; releases the order-graph entry on drop.
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    guard: MutexGuard<'a, T>,
    _token: AcquireToken,
}

impl<T: ?Sized> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock with the same order checking and poison recovery
/// as [`OrderedMutex`]. Read and write acquisitions register identically:
/// a read lock still blocks writers of its class, so it participates in
/// deadlock cycles the same way.
pub struct OrderedRwLock<T: ?Sized> {
    class: &'static str,
    inner: sync::RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Wrap `value` under the lock-order class `class`.
    pub fn new(class: &'static str, value: T) -> Self {
        Self {
            class,
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value (poison-recovering).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        let token = AcquireToken::acquire(self.class);
        let guard = self.inner.read().unwrap_or_else(|p| p.into_inner());
        OrderedRwLockReadGuard {
            guard,
            _token: token,
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        let token = AcquireToken::acquire(self.class);
        let guard = self.inner.write().unwrap_or_else(|p| p.into_inner());
        OrderedRwLockWriteGuard {
            guard,
            _token: token,
        }
    }

    /// The lock's class label.
    pub fn class(&self) -> &'static str {
        self.class
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("OrderedRwLock");
        s.field("class", &self.class);
        match self.inner.try_read() {
            Ok(guard) => s.field("data", &&*guard),
            Err(_) => s.field("data", &"<locked>"),
        };
        s.finish()
    }
}

/// Read guard for [`OrderedRwLock`].
pub struct OrderedRwLockReadGuard<'a, T: ?Sized> {
    guard: RwLockReadGuard<'a, T>,
    _token: AcquireToken,
}

impl<T: ?Sized> Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedRwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Write guard for [`OrderedRwLock`].
pub struct OrderedRwLockWriteGuard<'a, T: ?Sized> {
    guard: RwLockWriteGuard<'a, T>,
    _token: AcquireToken,
}

impl<T: ?Sized> Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedRwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = OrderedMutex::new("test.lib.counter", 0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.class(), "test.lib.counter");
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = OrderedRwLock::new("test.lib.map", vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contends_and_recovers_poison() {
        let m = std::sync::Arc::new(OrderedMutex::new("test.lib.try", 0u32));
        // Uncontended: succeeds and mutates.
        *m.try_lock().expect("uncontended try_lock") += 1;
        // Contended (same thread already holds it via lock()): None.
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        // Poisoned: recovered, not None and not a panic.
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.try_lock().expect("poison recovered"), 1);
    }

    #[test]
    fn mutex_poison_recovery() {
        let m = std::sync::Arc::new(OrderedMutex::new("test.lib.poison", 41u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // Recovered, not propagated.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_poison_recovery() {
        let l = std::sync::Arc::new(OrderedRwLock::new("test.lib.poison_rw", 1u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
