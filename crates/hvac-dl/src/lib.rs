//! The deep-learning workload layer.
//!
//! HVAC's evaluation trains four applications (ResNet50, TResNet_M,
//! CosmoFlow, DeepCAM) over two datasets (ImageNet-21K, cosmoUniverse).
//! This crate models the *I/O-relevant* behaviour of those jobs — which
//! files are read, in what order, how big they are, and how long the
//! accelerator is busy between reads — plus a real (small) SGD training loop
//! for the accuracy experiment:
//!
//! * [`dataset`] — dataset descriptors with deterministic per-sample sizes
//!   (fixed, uniform or log-normal, matching the "random sizes of file in
//!   the datasets" remark under Fig. 15),
//! * [`sampler`] — the distributed shuffled sampler: a seeded Feistel
//!   permutation gives every epoch a fresh global shuffle in O(1) per lookup
//!   (no 11.8-million-entry permutation arrays), sharded across ranks like
//!   PyTorch's `DistributedSampler`,
//! * [`models`] — per-application compute-time and allreduce models,
//! * [`training`] — the batch-synchronous training simulator that drives an
//!   [`hvac_sim::IoBackend`] and produces per-epoch times (Figs. 8–13),
//! * [`accuracy`] — a real softmax-regression trained on synthetic data to
//!   show order-equivalence of GPFS and HVAC (Fig. 14),
//! * [`loader`] — a functional batch loader that really moves bytes through
//!   an [`hvac_core::HvacClient`].

pub mod accuracy;
pub mod dataset;
pub mod loader;
pub mod models;
pub mod sampler;
pub mod training;

pub use dataset::{DatasetSpec, SizeDistribution};
pub use models::DnnModel;
pub use sampler::{DistributedSampler, Permutation};
pub use training::{simulate_training, TrainingConfig, TrainingResult};
