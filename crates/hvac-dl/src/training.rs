//! The batch-synchronous training simulator.
//!
//! Reproduces the structure of the paper's training jobs (§II-A/B): every
//! rank reads a batch of files (`<open, read, close>` each), computes
//! forward+backward, then all ranks allreduce gradients — a barrier — and
//! the next iteration begins. I/O and compute overlap within an iteration
//! (PyTorch data-loader prefetching), so the iteration critical path is
//! `max(io, compute)` per rank plus the allreduce.
//!
//! ## Extrapolation
//!
//! An ImageNet-21K epoch at 1,024 nodes is ~11.8 M file accesses; simulating
//! every one of ten epochs is wasteful because iterations are statistically
//! identical within an epoch. The driver therefore simulates
//! `max_sim_iters` iterations per epoch and scales: cold (first) epochs
//! access only never-seen files, warm epochs only cached ones, so each
//! regime's simulated prefix is representative. After the cold epoch the
//! backend is told `assume_all_cached()` (the real epoch would have cached
//! everything). Warm epochs beyond `distinct_warm_epochs` reuse measured
//! warm-epoch times round-robin.

use crate::dataset::DatasetSpec;
use crate::models::DnnModel;
use crate::sampler::DistributedSampler;
use hvac_sim::iostack::{FileAccess, IoBackend};
use hvac_types::{Bandwidth, NetworkConfig, SimTime};
use serde::{Deserialize, Serialize};

/// Everything one training run needs.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Dataset to train on.
    pub dataset: DatasetSpec,
    /// Network being trained.
    pub model: DnnModel,
    /// Compute nodes.
    pub nodes: u32,
    /// Training processes per node (the paper runs 2).
    pub procs_per_node: u32,
    /// Per-rank batch size.
    pub batch_size: u32,
    /// Epochs to train.
    pub epochs: u32,
    /// Iterations actually simulated per epoch (rest extrapolated).
    pub max_sim_iters: u64,
    /// Outstanding read requests per rank. The paper's profile (§III-F:
    /// strictly sequential `<open, read, close>` per file, I/O at 67–85 %
    /// of execution) corresponds to 1; raise it to model multi-worker
    /// loaders.
    pub loader_depth: u32,
    /// Distinct warm epochs to simulate before reusing times.
    pub distinct_warm_epochs: u32,
    /// Interconnect bandwidth for allreduce.
    pub network_bw: Bandwidth,
    /// Interconnect latency for allreduce.
    pub network_latency: SimTime,
    /// Fraction of the allreduce hidden behind backward compute (NCCL
    /// overlaps gradient reduction with the tail of backprop; only the
    /// remainder extends the iteration).
    pub allreduce_overlap: f64,
    /// Pre-populate the cache before epoch 1 (the paper's §IV-C prefetching
    /// future work): staging runs at full parallelism instead of
    /// demand-paging through barrier-synchronized training iterations.
    pub prefetch: bool,
    /// Kill node `.1` after epoch `.0` completes (the §III-H failure
    /// scenario; requires a backend with node state).
    pub fail_node_after_epoch: Option<(u32, u32)>,
    /// Shuffle seed.
    pub seed: u64,
}

impl TrainingConfig {
    /// A paper-shaped config with Summit interconnect defaults.
    pub fn new(dataset: DatasetSpec, model: DnnModel, nodes: u32) -> Self {
        let net = NetworkConfig::default();
        Self {
            dataset,
            model,
            nodes,
            procs_per_node: 2,
            batch_size: 32,
            epochs: 10,
            max_sim_iters: 8,
            loader_depth: 1,
            distinct_warm_epochs: 2,
            network_bw: net.node_bandwidth,
            network_latency: SimTime::from_nanos(net.latency_ns),
            allreduce_overlap: 0.75,
            prefetch: false,
            fail_node_after_epoch: None,
            seed: 0xD1,
        }
    }

    /// Set the batch size.
    pub fn batch_size(mut self, bs: u32) -> Self {
        self.batch_size = bs;
        self
    }

    /// Set the epoch count.
    pub fn epochs(mut self, e: u32) -> Self {
        self.epochs = e;
        self
    }

    /// Total ranks.
    pub fn ranks(&self) -> u64 {
        self.nodes as u64 * self.procs_per_node as u64
    }

    /// Iterations per epoch (after `drop_last` sharding).
    pub fn iters_per_epoch(&self) -> u64 {
        let sampler = DistributedSampler::new(self.dataset.train_samples, self.ranks(), self.seed);
        sampler.samples_per_rank() / self.batch_size.max(1) as u64
    }
}

/// Result of one simulated training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingResult {
    /// Backend label ("GPFS", "HVAC(4x1)", ...).
    pub backend: String,
    /// Wall time of each epoch.
    pub epoch_times: Vec<SimTime>,
    /// Time spent staging the dataset before epoch 1 (zero unless
    /// `TrainingConfig::prefetch` was set), included in `total`.
    pub prefetch_time: SimTime,
    /// Total training time.
    pub total: SimTime,
}

impl TrainingResult {
    /// The first (cold) epoch.
    pub fn first_epoch(&self) -> SimTime {
        self.epoch_times.first().copied().unwrap_or(SimTime::ZERO)
    }

    /// Best epoch excluding the first (the paper's "R_epoch").
    pub fn best_random_epoch(&self) -> SimTime {
        self.epoch_times
            .iter()
            .skip(1)
            .copied()
            .min()
            .unwrap_or_else(|| self.first_epoch())
    }

    /// Mean epoch time.
    pub fn avg_epoch(&self) -> SimTime {
        if self.epoch_times.is_empty() {
            return SimTime::ZERO;
        }
        let sum: u64 = self.epoch_times.iter().map(|t| t.as_nanos()).sum();
        SimTime(sum / self.epoch_times.len() as u64)
    }

    /// Total time in minutes (the unit of Figs. 8, 10, 12).
    pub fn total_minutes(&self) -> f64 {
        self.total.as_minutes_f64()
    }
}

/// Simulate one epoch's prefix; returns the extrapolated epoch wall time.
fn simulate_epoch(
    backend: &mut dyn IoBackend,
    cfg: &TrainingConfig,
    sampler: &DistributedSampler,
    epoch: u32,
    start: SimTime,
) -> SimTime {
    let ranks = cfg.ranks();
    let iters_total = cfg.iters_per_epoch().max(1);
    let sim_iters = iters_total.min(cfg.max_sim_iters.max(1));
    let perm = sampler.epoch_permutation(epoch);
    let compute = cfg.model.iteration_compute(cfg.batch_size);
    let full_allreduce = cfg
        .model
        .allreduce(ranks as u32, cfg.network_bw, cfg.network_latency);
    let visible = (1.0 - cfg.allreduce_overlap).clamp(0.0, 1.0);
    let allreduce = SimTime::from_secs_f64(full_allreduce.as_secs_f64() * visible);

    let dispatch = SimTime::from_nanos(backend.client_dispatch_ns() * cfg.batch_size as u64);
    let mut t = start;
    // Reused across iterations to avoid per-iteration allocation.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, u64)>> =
        std::collections::BinaryHeap::with_capacity(ranks as usize * cfg.loader_depth as usize);
    let mut remaining = vec![0u64; ranks as usize];
    let mut io_max = vec![SimTime::ZERO; ranks as usize];
    for iter in 0..sim_iters {
        let iter_start = t;
        let mut barrier = SimTime::ZERO;
        // Each rank's loader keeps `loader_depth` sample reads in flight
        // (the §III-F profile per file: open, one read, close); a new read
        // is issued when an outstanding one completes. The chains of
        // different ranks interleave in *global time order* via a min-heap
        // — the shared resources (MDS pool, bandwidth pipes) require
        // non-decreasing arrival times. Batch loading is NOT hidden behind
        // compute (the paper measures 67–85 % of execution time in I/O,
        // §I/Fig. 1): the iteration is load-then-train.
        let depth = cfg.loader_depth.max(1) as u64;
        let bs = cfg.batch_size as u64;
        heap.clear();
        for rank in 0..ranks {
            for b in 0..depth.min(bs) {
                heap.push(std::cmp::Reverse((iter_start, rank, b)));
            }
            remaining[rank as usize] = bs;
            io_max[rank as usize] = iter_start;
        }
        while let Some(std::cmp::Reverse((arrive, rank, b))) = heap.pop() {
            let node = (rank / cfg.procs_per_node as u64) as u32;
            let j = iter * bs + b;
            let index = perm.apply(j * ranks + rank);
            let done = backend.access(
                arrive,
                node,
                FileAccess {
                    index,
                    size: cfg.dataset.size_of(index),
                },
            );
            let r = rank as usize;
            if done > io_max[r] {
                io_max[r] = done;
            }
            if b + depth < bs {
                heap.push(std::cmp::Reverse((done, rank, b + depth)));
            }
            remaining[r] -= 1;
            if remaining[r] == 0 {
                // Batch loaded; the rank pays its serial client dispatch
                // cost and trains on the batch (not overlapped: see above).
                let rank_done = io_max[r].saturating_add(dispatch).saturating_add(compute);
                if rank_done > barrier {
                    barrier = rank_done;
                }
            }
        }
        t = barrier.saturating_add(allreduce);
    }
    let simulated = t.saturating_since(start);
    let scale = iters_total as f64 / sim_iters as f64;
    SimTime::from_secs_f64(simulated.as_secs_f64() * scale)
}

/// Simulate a full training job over a backend.
pub fn simulate_training(backend: &mut dyn IoBackend, cfg: &TrainingConfig) -> TrainingResult {
    assert!(cfg.nodes > 0 && cfg.procs_per_node > 0 && cfg.batch_size > 0);
    backend.set_client_count(cfg.ranks() as u32);
    let sampler = DistributedSampler::new(cfg.dataset.train_samples, cfg.ranks(), cfg.seed);
    let mut epoch_times: Vec<SimTime> = Vec::with_capacity(cfg.epochs as usize);
    let mut clock = SimTime::ZERO;
    let mut warm_times: Vec<SimTime> = Vec::new();

    let mut prefetch_time = SimTime::ZERO;
    if cfg.prefetch {
        let staged = backend.prefetch_dataset(
            clock,
            cfg.dataset.train_samples,
            cfg.dataset.expected_total(),
        );
        prefetch_time = staged.saturating_since(clock);
        clock = staged;
        backend.assume_all_cached();
    }

    for epoch in 0..cfg.epochs {
        let time = if epoch == 0 && !cfg.prefetch {
            let t = simulate_epoch(backend, cfg, &sampler, epoch, clock);
            // The full cold epoch would have cached the entire dataset.
            backend.assume_all_cached();
            t
        } else if (warm_times.len() as u32) < cfg.distinct_warm_epochs {
            let t = simulate_epoch(backend, cfg, &sampler, epoch, clock);
            warm_times.push(t);
            t
        } else {
            // Warm epochs are statistically identical; reuse measurements.
            warm_times[(epoch as usize - 1) % warm_times.len()]
        };
        clock = clock.saturating_add(time);
        epoch_times.push(time);
        if let Some((after, node)) = cfg.fail_node_after_epoch {
            if epoch == after {
                backend.inject_node_failure(node);
                // The measured warm epochs no longer represent the degraded
                // system; force re-simulation of the remaining epochs.
                warm_times.clear();
            }
        }
    }

    TrainingResult {
        backend: backend.label(),
        total: clock,
        prefetch_time,
        epoch_times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_sim::gpfs::GpfsModel;
    use hvac_sim::iostack::{GpfsBackend, HvacBackend, XfsLocalBackend};
    use hvac_types::{ClusterConfig, GpfsConfig};

    /// GPFS as a training job sees it (center-wide shared Alpine).
    fn shared_gpfs() -> GpfsBackend {
        GpfsBackend::new(GpfsModel::new(GpfsConfig::shared_alpine()))
    }

    fn small_cfg(nodes: u32) -> TrainingConfig {
        let mut cfg = TrainingConfig::new(
            DatasetSpec::imagenet21k().scaled_down(512), // ~23k samples
            DnnModel::resnet50(),
            nodes,
        );
        cfg.max_sim_iters = 4;
        cfg.epochs = 4;
        cfg
    }

    fn hvac_backend(nodes: u32, instances: u32) -> HvacBackend {
        let mut c = ClusterConfig::with_nodes(nodes);
        c.hvac.instances_per_node = instances;
        c.gpfs = GpfsConfig::shared_alpine();
        HvacBackend::new(&c, 1)
    }

    #[test]
    fn epoch_counts_and_positive_times() {
        let cfg = small_cfg(8);
        let mut backend = GpfsBackend::new(GpfsModel::summit());
        let r = simulate_training(&mut backend, &cfg);
        assert_eq!(r.epoch_times.len(), 4);
        assert!(r.epoch_times.iter().all(|t| *t > SimTime::ZERO));
        assert_eq!(
            r.total.as_nanos(),
            r.epoch_times.iter().map(|t| t.as_nanos()).sum::<u64>()
        );
        assert_eq!(r.backend, "GPFS");
    }

    /// A configuration big enough that I/O, not compute, is the bottleneck
    /// on GPFS (the paper's regime at hundreds of nodes): many ranks, the
    /// full-resolution sampler capped to a handful of simulated iterations.
    fn io_bound_cfg() -> TrainingConfig {
        let mut cfg = TrainingConfig::new(DatasetSpec::imagenet21k(), DnnModel::resnet50(), 1024);
        cfg.max_sim_iters = 3;
        cfg.epochs = 3;
        cfg
    }

    #[test]
    fn hvac_first_epoch_costs_like_gpfs_then_improves() {
        let cfg = io_bound_cfg();
        let mut gpfs = shared_gpfs();
        let mut hvac = hvac_backend(1024, 1);
        let rg = simulate_training(&mut gpfs, &cfg);
        let rh = simulate_training(&mut hvac, &cfg);
        // Epoch 1: HVAC also pays the PFS (plus copy overhead).
        let e1_ratio = rh.first_epoch().as_secs_f64() / rg.first_epoch().as_secs_f64();
        assert!(
            e1_ratio > 0.8,
            "HVAC epoch 1 should not be magically fast: {e1_ratio}"
        );
        // Warm epochs: HVAC much faster than GPFS.
        assert!(
            rh.best_random_epoch() < rg.best_random_epoch(),
            "hvac warm {} vs gpfs {}",
            rh.best_random_epoch(),
            rg.best_random_epoch()
        );
    }

    #[test]
    fn ordering_xfs_fastest_hvac_between_gpfs_slowest() {
        let cfg = small_cfg(16);
        let mut gpfs = shared_gpfs();
        let mut hvac = hvac_backend(16, 1);
        let mut xfs = XfsLocalBackend::summit(16);
        let tg = simulate_training(&mut gpfs, &cfg).total;
        let th = simulate_training(&mut hvac, &cfg).total;
        let tx = simulate_training(&mut xfs, &cfg).total;
        assert!(tx <= th, "XFS {tx} must lower-bound HVAC {th}");
        assert!(th <= tg, "HVAC {th} must beat GPFS {tg}");
    }

    #[test]
    fn more_instances_never_hurt() {
        let cfg = small_cfg(8);
        let t1 = simulate_training(&mut hvac_backend(8, 1), &cfg).total;
        let t4 = simulate_training(&mut hvac_backend(8, 4), &cfg).total;
        assert!(t4 <= t1, "4x1 {t4} should be <= 1x1 {t1}");
    }

    #[test]
    fn more_epochs_scale_total_roughly_linearly() {
        let mut cfg = small_cfg(4);
        cfg.epochs = 2;
        let t2 = simulate_training(&mut hvac_backend(4, 1), &cfg)
            .total
            .as_secs_f64();
        cfg.epochs = 8;
        let t8 = simulate_training(&mut hvac_backend(4, 1), &cfg)
            .total
            .as_secs_f64();
        let ratio = t8 / t2;
        assert!(ratio > 2.0 && ratio < 5.0, "8 vs 2 epochs ratio {ratio}");
    }

    #[test]
    fn warm_epoch_reuse_kicks_in() {
        let mut cfg = small_cfg(4);
        cfg.epochs = 6;
        cfg.distinct_warm_epochs = 2;
        let r = simulate_training(&mut hvac_backend(4, 1), &cfg);
        // Epochs 3.. reuse epochs 1..=2 times round-robin.
        assert_eq!(r.epoch_times[3], r.epoch_times[1]);
        assert_eq!(r.epoch_times[4], r.epoch_times[2]);
        assert_eq!(r.epoch_times[5], r.epoch_times[1]);
    }

    #[test]
    fn prefetch_replaces_the_cold_epoch() {
        let mut cfg = small_cfg(8);
        cfg.epochs = 3;
        let cold = simulate_training(&mut hvac_backend(8, 1), &cfg);
        cfg.prefetch = true;
        let staged = simulate_training(&mut hvac_backend(8, 1), &cfg);
        assert_eq!(cold.prefetch_time, SimTime::ZERO);
        assert!(staged.prefetch_time > SimTime::ZERO);
        // With prefetch, epoch 1 is as fast as the warm epochs.
        let e1 = staged.epoch_times[0].as_secs_f64();
        let warm = staged.best_random_epoch().as_secs_f64();
        assert!(e1 <= warm * 1.05, "epoch 1 {e1} vs warm {warm}");
        // And epoch 1 is much cheaper than the demand-paged cold epoch.
        assert!(
            staged.epoch_times[0] < cold.epoch_times[0],
            "staged epoch-1 {} vs cold {}",
            staged.epoch_times[0],
            cold.epoch_times[0]
        );
    }

    #[test]
    fn prefetch_staging_beats_demand_paging_for_short_jobs() {
        // Staging copies at full parallelism; demand paging interleaves the
        // copies with barrier-synchronized compute. For a 2-epoch job the
        // staged variant must win or tie.
        let mut cfg = small_cfg(8);
        cfg.epochs = 2;
        let cold = simulate_training(&mut hvac_backend(8, 1), &cfg).total;
        cfg.prefetch = true;
        let staged = simulate_training(&mut hvac_backend(8, 1), &cfg).total;
        assert!(
            staged.as_secs_f64() <= cold.as_secs_f64() * 1.05,
            "staged {staged} vs cold {cold}"
        );
    }

    #[test]
    fn result_summary_stats() {
        let r = TrainingResult {
            backend: "X".into(),
            prefetch_time: SimTime::ZERO,
            epoch_times: vec![
                SimTime::from_secs(10),
                SimTime::from_secs(4),
                SimTime::from_secs(6),
            ],
            total: SimTime::from_secs(20),
        };
        assert_eq!(r.first_epoch(), SimTime::from_secs(10));
        assert_eq!(r.best_random_epoch(), SimTime::from_secs(4));
        assert_eq!(r.avg_epoch(), SimTime(20_000_000_000 / 3));
        assert!((r.total_minutes() - 20.0 / 60.0).abs() < 1e-9);
    }
}
