//! Dataset descriptors.
//!
//! A dataset, from the cache's point of view, is a number of files with a
//! size distribution. Sizes are a deterministic function of the sample index
//! so simulation and placement agree without storing anything.

use hvac_hash::pathhash::mix64;
use hvac_types::{summit, ByteSize};
use serde::{Deserialize, Serialize};

/// Per-sample file-size distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeDistribution {
    /// Every file has the same size.
    Fixed,
    /// Uniform in `[mean*(1-spread), mean*(1+spread)]`.
    Uniform {
        /// Relative half-width, in `(0, 1)`.
        spread: f64,
    },
    /// Log-normal with the given sigma (of the underlying normal), rescaled
    /// to the dataset mean. Heavy tails — what image datasets look like.
    LogNormal {
        /// Shape parameter.
        sigma: f64,
    },
}

/// A training dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Human-readable name.
    pub name: String,
    /// Training samples (files).
    pub train_samples: u64,
    /// Mean file size.
    pub mean_size: ByteSize,
    /// Size distribution around the mean.
    pub size_dist: SizeDistribution,
    /// Seed mixed into per-sample draws.
    pub seed: u64,
}

impl DatasetSpec {
    /// ImageNet-21K as used in the paper: 11.8 M samples, ~163 KB mean,
    /// heavy-tailed JPEG sizes (§IV-A3).
    pub fn imagenet21k() -> Self {
        Self {
            name: "ImageNet21K".into(),
            train_samples: summit::IMAGENET21K_TRAIN_SAMPLES,
            mean_size: summit::IMAGENET21K_MEAN_SAMPLE,
            size_dist: SizeDistribution::LogNormal { sigma: 0.7 },
            seed: 21_000,
        }
    }

    /// cosmoUniverse: 524,288 TFRecord samples, ~2.5 MB each, near-uniform
    /// (preprocessed records, §IV-A3).
    pub fn cosmouniverse() -> Self {
        Self {
            name: "cosmoUniverse".into(),
            train_samples: summit::COSMOFLOW_TRAIN_SAMPLES,
            mean_size: summit::cosmoflow_mean_sample(),
            size_dist: SizeDistribution::Uniform { spread: 0.05 },
            seed: 36_000,
        }
    }

    /// DeepCAM climate tiles: 768×1152×16 samples, ~27 MB each (§IV-A2).
    pub fn deepcam() -> Self {
        Self {
            name: "DeepCAM-climate".into(),
            train_samples: 121_266, // the CAM5 segmentation training split
            mean_size: summit::DEEPCAM_SAMPLE,
            size_dist: SizeDistribution::Fixed,
            seed: 18_000,
        }
    }

    /// A proportionally scaled-down copy (for tests and benches): divides the
    /// sample count by `factor`, keeping sizes.
    pub fn scaled_down(&self, factor: u64) -> Self {
        Self {
            name: format!("{}/÷{}", self.name, factor),
            train_samples: (self.train_samples / factor).max(1),
            ..self.clone()
        }
    }

    /// Deterministic size of sample `index`.
    pub fn size_of(&self, index: u64) -> ByteSize {
        let mean = self.mean_size.as_f64();
        let bytes = match self.size_dist {
            SizeDistribution::Fixed => mean,
            SizeDistribution::Uniform { spread } => {
                let u = unit_draw(self.seed, index);
                mean * (1.0 + spread * (2.0 * u - 1.0))
            }
            SizeDistribution::LogNormal { sigma } => {
                let z = gaussian_draw(self.seed, index);
                // E[exp(sigma Z)] = exp(sigma^2/2); divide it out to keep the
                // configured mean.
                mean * (sigma * z - sigma * sigma / 2.0).exp()
            }
        };
        ByteSize(bytes.max(1.0) as u64)
    }

    /// Total dataset size (sum over samples) — O(n); use on scaled-down
    /// specs or trust `expected_total`.
    pub fn total_size(&self) -> ByteSize {
        let mut total = 0u64;
        for i in 0..self.train_samples {
            total += self.size_of(i).bytes();
        }
        ByteSize(total)
    }

    /// `mean * samples` — the expected total.
    pub fn expected_total(&self) -> ByteSize {
        ByteSize(self.mean_size.bytes() * self.train_samples)
    }

    /// Synthetic application-space path of a sample (shared convention with
    /// the functional loader and the examples).
    pub fn path_of(&self, dir: &str, index: u64) -> String {
        format!("{dir}/sample_{index:08}.bin")
    }
}

/// Uniform draw in [0, 1) from (seed, index).
fn unit_draw(seed: u64, index: u64) -> f64 {
    let x = mix64(seed ^ index.wrapping_mul(0x2545_F491_4F6C_DD1D));
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal draw via Box–Muller from two decorrelated uniforms.
fn gaussian_draw(seed: u64, index: u64) -> f64 {
    let u1 = unit_draw(seed, index).max(1e-12);
    let u2 = unit_draw(seed ^ 0xdead_beef, index);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_scale() {
        let inet = DatasetSpec::imagenet21k();
        assert_eq!(inet.train_samples, 11_797_632);
        let cosmo = DatasetSpec::cosmouniverse();
        assert_eq!(cosmo.train_samples, 524_288);
        assert!(cosmo.mean_size.bytes() > 2_000_000);
        let cam = DatasetSpec::deepcam();
        assert_eq!(cam.mean_size.bytes(), 27_000_000);
    }

    #[test]
    fn sizes_are_deterministic_and_positive() {
        let d = DatasetSpec::imagenet21k();
        for i in [0u64, 1, 999, 11_000_000] {
            assert_eq!(d.size_of(i), d.size_of(i));
            assert!(d.size_of(i).bytes() >= 1);
        }
    }

    #[test]
    fn fixed_distribution_is_constant() {
        let d = DatasetSpec::deepcam();
        assert_eq!(d.size_of(0), d.size_of(123456));
    }

    #[test]
    fn lognormal_mean_is_calibrated() {
        let d = DatasetSpec::imagenet21k().scaled_down(256); // ~46k samples
        let total = d.total_size().as_f64();
        let mean = total / d.train_samples as f64;
        let target = d.mean_size.as_f64();
        assert!(
            (mean - target).abs() / target < 0.05,
            "empirical mean {mean} vs target {target}"
        );
        // ...and it has a real spread.
        let a = d.size_of(1).bytes() as f64;
        let b = d.size_of(2).bytes() as f64;
        assert!((a - b).abs() > 1.0);
    }

    #[test]
    fn uniform_distribution_respects_bounds() {
        let d = DatasetSpec::cosmouniverse().scaled_down(64);
        let mean = d.mean_size.as_f64();
        for i in 0..5_000 {
            let s = d.size_of(i).as_f64();
            assert!(s >= mean * 0.949 && s <= mean * 1.051, "sample {i}: {s}");
        }
    }

    #[test]
    fn scaled_down_keeps_sizes() {
        let d = DatasetSpec::imagenet21k();
        let s = d.scaled_down(1000);
        assert_eq!(s.train_samples, d.train_samples / 1000);
        assert_eq!(s.size_of(42), d.size_of(42));
        assert_eq!(
            DatasetSpec::deepcam().scaled_down(u64::MAX).train_samples,
            1
        );
    }

    #[test]
    fn path_convention() {
        let d = DatasetSpec::imagenet21k();
        assert_eq!(
            d.path_of("/gpfs/train", 7),
            "/gpfs/train/sample_00000007.bin"
        );
    }
}
