//! The accuracy experiment (Fig. 14).
//!
//! The paper's claim: *"HVAC does not change the shuffling and randomness of
//! DL training I/O at any time during training"* — hash-based lookup is
//! order-transparent, so the accuracy trajectory is identical to GPFS's,
//! unlike sharding approaches that restrict each node to a static subset.
//!
//! We reproduce that claim with a model we can actually train: softmax
//! regression over a synthetic Gaussian-mixture classification task. The
//! sample *order* is produced by the same [`DistributedSampler`] the I/O
//! layer uses; feeding the orders observed under GPFS and under HVAC (which
//! are equal — that is the theorem) yields bitwise-identical accuracy
//! curves, while a class-skewed static shard (the strawman the paper warns
//! about) degrades convergence.

use crate::sampler::DistributedSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A synthetic classification dataset: Gaussian blobs, one per class.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// Feature dimension.
    pub dim: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Training features, row-major `[n_train][dim]`.
    pub train_x: Vec<f32>,
    /// Training labels.
    pub train_y: Vec<u32>,
    /// Validation features.
    pub valid_x: Vec<f32>,
    /// Validation labels.
    pub valid_y: Vec<u32>,
}

impl SyntheticDataset {
    /// Generate a mixture with unit-norm class centers and `noise` std.
    pub fn generate(
        n_classes: usize,
        dim: usize,
        n_train: usize,
        n_valid: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut centers = vec![0f32; n_classes * dim];
        for c in centers.iter_mut() {
            *c = rng.gen_range(-1.0f32..1.0);
        }
        // Normalize centers so classes are equally separable.
        for k in 0..n_classes {
            let row = &mut centers[k * dim..(k + 1) * dim];
            let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
            row.iter_mut().for_each(|v| *v *= 2.0 / norm);
        }
        let gen_split = |n: usize, rng: &mut StdRng| {
            let mut xs = vec![0f32; n * dim];
            let mut ys = vec![0u32; n];
            for i in 0..n {
                let k = i % n_classes; // balanced
                ys[i] = k as u32;
                for d in 0..dim {
                    let g: f32 = {
                        // Box–Muller from two uniforms.
                        let u1: f32 = rng.gen_range(1e-7f32..1.0);
                        let u2: f32 = rng.gen_range(0.0f32..1.0);
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                    };
                    xs[i * dim + d] = centers[k * dim + d] + noise * g;
                }
            }
            (xs, ys)
        };
        let (train_x, train_y) = gen_split(n_train, &mut rng);
        let (valid_x, valid_y) = gen_split(n_valid, &mut rng);
        Self {
            dim,
            n_classes,
            train_x,
            train_y,
            valid_x,
            valid_y,
        }
    }

    /// Training set size.
    pub fn n_train(&self) -> usize {
        self.train_y.len()
    }
}

/// One point on the accuracy-vs-iterations curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyPoint {
    /// SGD iterations (samples) consumed so far.
    pub iteration: u64,
    /// Top-1 validation accuracy, `[0, 1]`.
    pub top1: f64,
    /// Top-5 validation accuracy, `[0, 1]`.
    pub top5: f64,
}

/// Softmax-regression trainer with plain SGD.
#[derive(Debug, Clone)]
pub struct SoftmaxTrainer {
    dim: usize,
    n_classes: usize,
    weights: Vec<f32>, // [n_classes][dim + 1] with bias
    lr: f32,
}

impl SoftmaxTrainer {
    /// Zero-initialized trainer (deterministic: no random init needed).
    pub fn new(dim: usize, n_classes: usize, lr: f32) -> Self {
        Self {
            dim,
            n_classes,
            weights: vec![0.0; n_classes * (dim + 1)],
            lr,
        }
    }

    fn logits(&self, x: &[f32], out: &mut [f32]) {
        for (k, slot) in out.iter_mut().enumerate().take(self.n_classes) {
            let row = &self.weights[k * (self.dim + 1)..(k + 1) * (self.dim + 1)];
            let mut z = row[self.dim]; // bias
            for d in 0..self.dim {
                z += row[d] * x[d];
            }
            *slot = z;
        }
    }

    /// One SGD step on a single sample.
    pub fn step(&mut self, x: &[f32], y: u32) {
        let mut z = vec![0f32; self.n_classes];
        self.logits(x, &mut z);
        // Softmax (stable).
        let m = z.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0f32;
        for v in z.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        for (k, p) in z.iter().enumerate() {
            let p = p / sum;
            let grad = p - if k as u32 == y { 1.0 } else { 0.0 };
            let row = &mut self.weights[k * (self.dim + 1)..(k + 1) * (self.dim + 1)];
            for d in 0..self.dim {
                row[d] -= self.lr * grad * x[d];
            }
            row[self.dim] -= self.lr * grad;
        }
    }

    /// Top-1/top-5 accuracy on a validation split.
    pub fn evaluate(&self, xs: &[f32], ys: &[u32]) -> (f64, f64) {
        let n = ys.len();
        if n == 0 {
            return (0.0, 0.0);
        }
        let mut top1 = 0usize;
        let mut top5 = 0usize;
        let mut z = vec![0f32; self.n_classes];
        for i in 0..n {
            self.logits(&xs[i * self.dim..(i + 1) * self.dim], &mut z);
            let y = ys[i] as usize;
            let ty = z[y];
            let better = z.iter().filter(|&&v| v > ty).count();
            if better == 0 {
                top1 += 1;
            }
            if better < 5 {
                top5 += 1;
            }
        }
        (top1 as f64 / n as f64, top5 as f64 / n as f64)
    }
}

/// Train over an explicit sample order, evaluating every `eval_every` steps.
pub fn train_with_order(
    data: &SyntheticDataset,
    order: &[u64],
    lr: f32,
    eval_every: u64,
) -> Vec<AccuracyPoint> {
    let mut trainer = SoftmaxTrainer::new(data.dim, data.n_classes, lr);
    let mut curve = Vec::new();
    for (step, &idx) in order.iter().enumerate() {
        let i = idx as usize;
        trainer.step(
            &data.train_x[i * data.dim..(i + 1) * data.dim],
            data.train_y[i],
        );
        let it = step as u64 + 1;
        if it.is_multiple_of(eval_every) || step + 1 == order.len() {
            let (top1, top5) = trainer.evaluate(&data.valid_x, &data.valid_y);
            curve.push(AccuracyPoint {
                iteration: it,
                top1,
                top5,
            });
        }
    }
    curve
}

/// The globally shuffled multi-epoch order both GPFS and HVAC deliver:
/// HVAC's hash lookup does not touch the sampler, so this *is* both orders.
pub fn shuffled_order(n_samples: u64, ranks: u64, epochs: u32, seed: u64) -> Vec<u64> {
    let sampler = DistributedSampler::new(n_samples, ranks, seed);
    let mut order = Vec::with_capacity((epochs as u64 * n_samples) as usize);
    for epoch in 0..epochs {
        // Interleave ranks the way a synchronous job consumes them.
        let per_rank = sampler.samples_per_rank();
        for j in 0..per_rank {
            for rank in 0..ranks {
                order.push(sampler.sample(epoch, rank, j));
            }
        }
    }
    order
}

/// The strawman the paper warns about: each rank re-reads only its static,
/// class-sorted shard (no global reshuffle). The class skew within shards
/// produces oscillating gradients and slower convergence.
pub fn sharded_order(data: &SyntheticDataset, ranks: u64, epochs: u32) -> Vec<u64> {
    let n = data.n_train() as u64;
    // Sort sample indices by label, then cut into contiguous shards.
    let mut by_class: Vec<u64> = (0..n).collect();
    by_class.sort_by_key(|&i| data.train_y[i as usize]);
    let shard = (n / ranks).max(1);
    let mut order = Vec::with_capacity((epochs as u64 * n) as usize);
    for _epoch in 0..epochs {
        for j in 0..shard {
            for rank in 0..ranks {
                let pos = rank * shard + j;
                if pos < n {
                    order.push(by_class[pos as usize]);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> SyntheticDataset {
        SyntheticDataset::generate(10, 16, 3000, 800, 0.8, 7)
    }

    #[test]
    fn dataset_shapes_and_determinism() {
        let d = data();
        assert_eq!(d.train_x.len(), 3000 * 16);
        assert_eq!(d.valid_y.len(), 800);
        let d2 = data();
        assert_eq!(d.train_x, d2.train_x);
        // Balanced labels.
        let count0 = d.train_y.iter().filter(|&&y| y == 0).count();
        assert_eq!(count0, 300);
    }

    #[test]
    fn training_learns_something() {
        let d = data();
        let order = shuffled_order(d.n_train() as u64, 4, 3, 42);
        let curve = train_with_order(&d, &order, 0.05, 1000);
        let last = curve.last().unwrap();
        assert!(last.top1 > 0.7, "top1 {}", last.top1);
        assert!(last.top5 > 0.95, "top5 {}", last.top5);
        assert!(last.top5 >= last.top1);
        // Accuracy improves from the first checkpoint to the last.
        assert!(last.top1 >= curve[0].top1);
    }

    #[test]
    fn gpfs_and_hvac_orders_are_identical_hence_identical_accuracy() {
        // THE Fig. 14 claim: same sampler, same order, same curve — bitwise.
        let d = data();
        let order_gpfs = shuffled_order(d.n_train() as u64, 8, 2, 99);
        let order_hvac = shuffled_order(d.n_train() as u64, 8, 2, 99);
        assert_eq!(order_gpfs, order_hvac);
        let c1 = train_with_order(&d, &order_gpfs, 0.05, 500);
        let c2 = train_with_order(&d, &order_hvac, 0.05, 500);
        assert_eq!(c1, c2);
    }

    #[test]
    fn class_skewed_sharding_converges_worse() {
        let d = data();
        let epochs = 2;
        let shuffled = shuffled_order(d.n_train() as u64, 8, epochs, 3);
        let sharded = sharded_order(&d, 8, epochs);
        let eval = 10_000_000; // only final point
        let acc_shuffled = train_with_order(&d, &shuffled, 0.05, eval)
            .last()
            .unwrap()
            .top1;
        let acc_sharded = train_with_order(&d, &sharded, 0.05, eval)
            .last()
            .unwrap()
            .top1;
        assert!(
            acc_shuffled > acc_sharded + 0.02,
            "shuffled {acc_shuffled} should beat class-skewed sharding {acc_sharded}"
        );
    }

    #[test]
    fn evaluate_on_empty_split_is_zero() {
        let t = SoftmaxTrainer::new(4, 3, 0.1);
        assert_eq!(t.evaluate(&[], &[]), (0.0, 0.0));
    }

    #[test]
    fn top5_with_few_classes_is_total() {
        // 3 classes: top-5 always hits.
        let d = SyntheticDataset::generate(3, 8, 300, 100, 0.5, 1);
        let order = shuffled_order(300, 2, 1, 0);
        let curve = train_with_order(&d, &order, 0.05, 100);
        assert!(curve.iter().all(|p| (p.top5 - 1.0).abs() < 1e-12));
    }
}
