//! The distributed shuffled sampler.
//!
//! DL training shuffles the whole dataset every epoch (§II-B) and shards the
//! permuted order across ranks. Materializing an 11.8-million-entry
//! permutation per simulated epoch would dominate simulation time, so
//! [`Permutation`] implements a *format-preserving* pseudo-random
//! permutation: a 4-round Feistel network over the smallest power-of-four
//! domain ≥ n, with cycle-walking to stay inside `[0, n)`. Lookup is O(1)
//! amortized and the mapping is a true bijection — the property Fig. 14
//! depends on (every sample seen exactly once per epoch).

use hvac_hash::pathhash::mix64;

/// A seeded pseudo-random permutation of `0..n`.
#[derive(Debug, Clone)]
pub struct Permutation {
    n: u64,
    half_bits: u32,
    keys: [u64; 4],
}

impl Permutation {
    /// The permutation of `0..n` selected by `seed` (n = 0 is allowed and
    /// yields an empty domain).
    pub fn new(n: u64, seed: u64) -> Self {
        // Domain 2^(2k) >= n, so the Feistel halves are k bits each.
        let mut half_bits = 1;
        while 1u64 << (2 * half_bits) < n {
            half_bits += 1;
        }
        let keys = [
            mix64(seed ^ 0xa076_1d64_78bd_642f),
            mix64(seed ^ 0xe703_7ed1_a0b4_28db),
            mix64(seed ^ 0x8ebc_6af0_9c88_c6e3),
            mix64(seed ^ 0x5899_65cc_7537_4cc3),
        ];
        Self { n, half_bits, keys }
    }

    /// Domain size.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn round(&self, right: u64, key: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        mix64(right ^ key) & mask
    }

    fn feistel(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = (x >> self.half_bits) & mask;
        let mut right = x & mask;
        for &key in &self.keys {
            let new_right = left ^ self.round(right, key);
            left = right;
            right = new_right;
        }
        (left << self.half_bits) | right
    }

    /// Image of `i` under the permutation.
    ///
    /// # Panics
    /// If `i >= n`.
    pub fn apply(&self, i: u64) -> u64 {
        assert!(
            i < self.n,
            "index {i} outside permutation domain {}",
            self.n
        );
        // Cycle-walk: the Feistel permutes the padded power-of-two domain;
        // iterating until we land inside [0, n) restricts it to a
        // permutation of [0, n). Expected iterations < 4 (domain < 4n).
        let mut x = self.feistel(i);
        while x >= self.n {
            x = self.feistel(x);
        }
        x
    }
}

/// PyTorch-`DistributedSampler`-style epoch sharding: each epoch draws a
/// fresh global permutation; rank `r` of `world` reads every `world`-th
/// element starting at `r` (so shards are disjoint and cover the dataset).
#[derive(Debug, Clone)]
pub struct DistributedSampler {
    n_samples: u64,
    world: u64,
    seed: u64,
}

impl DistributedSampler {
    /// A sampler over `n_samples` for `world` ranks.
    pub fn new(n_samples: u64, world: u64, seed: u64) -> Self {
        assert!(world > 0, "world size must be >= 1");
        Self {
            n_samples,
            world,
            seed,
        }
    }

    /// Samples per rank per epoch (floor; trailing remainder is dropped,
    /// like `drop_last=True`).
    pub fn samples_per_rank(&self) -> u64 {
        self.n_samples / self.world
    }

    /// The permutation of a given epoch.
    pub fn epoch_permutation(&self, epoch: u32) -> Permutation {
        Permutation::new(self.n_samples, mix64(self.seed ^ (epoch as u64) << 17))
    }

    /// The `j`-th sample index read by `rank` in `epoch`.
    pub fn sample(&self, epoch: u32, rank: u64, j: u64) -> u64 {
        debug_assert!(rank < self.world);
        debug_assert!(j < self.samples_per_rank());
        self.epoch_permutation(epoch).apply(j * self.world + rank)
    }

    /// Iterator over one rank's epoch shard, in read order.
    pub fn rank_iter(&self, epoch: u32, rank: u64) -> impl Iterator<Item = u64> + '_ {
        let perm = self.epoch_permutation(epoch);
        let world = self.world;
        (0..self.samples_per_rank()).map(move |j| perm.apply(j * world + rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn permutation_is_a_bijection() {
        for n in [1u64, 2, 7, 100, 1000, 4097] {
            let p = Permutation::new(n, 42);
            let mut seen = HashSet::new();
            for i in 0..n {
                let x = p.apply(i);
                assert!(x < n, "out of range");
                assert!(seen.insert(x), "duplicate image {x} for n={n}");
            }
            assert_eq!(seen.len() as u64, n);
        }
    }

    #[test]
    fn different_seeds_differ_and_same_seed_repeats() {
        let n = 500;
        let a: Vec<u64> = (0..n).map(|i| Permutation::new(n, 1).apply(i)).collect();
        let b: Vec<u64> = (0..n).map(|i| Permutation::new(n, 1).apply(i)).collect();
        let c: Vec<u64> = (0..n).map(|i| Permutation::new(n, 2).apply(i)).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn permutation_actually_shuffles() {
        let n = 1000;
        let p = Permutation::new(n, 7);
        let fixed_points = (0..n).filter(|&i| p.apply(i) == i).count();
        assert!(fixed_points < 20, "too many fixed points: {fixed_points}");
    }

    #[test]
    #[should_panic(expected = "outside permutation domain")]
    fn out_of_domain_panics() {
        Permutation::new(10, 1).apply(10);
    }

    #[test]
    fn sampler_shards_are_disjoint_and_cover() {
        let s = DistributedSampler::new(1000, 8, 99);
        let mut seen = HashSet::new();
        for rank in 0..8 {
            for idx in s.rank_iter(3, rank) {
                assert!(seen.insert(idx), "index {idx} read by two ranks");
            }
        }
        assert_eq!(seen.len() as u64, 8 * s.samples_per_rank());
    }

    #[test]
    fn epochs_reshuffle() {
        let s = DistributedSampler::new(512, 4, 5);
        let e0: Vec<u64> = s.rank_iter(0, 0).collect();
        let e1: Vec<u64> = s.rank_iter(1, 0).collect();
        assert_ne!(e0, e1, "epochs must use different shuffles");
        // But the union over ranks is the same set each epoch.
        let set = |e: u32| -> HashSet<u64> {
            (0..4)
                .flat_map(|r| s.rank_iter(e, r).collect::<Vec<_>>())
                .collect()
        };
        assert_eq!(set(0), set(1));
    }

    #[test]
    fn sample_matches_rank_iter() {
        let s = DistributedSampler::new(300, 3, 11);
        for rank in 0..3 {
            for (j, idx) in s.rank_iter(2, rank).enumerate() {
                assert_eq!(s.sample(2, rank, j as u64), idx);
            }
        }
    }

    #[test]
    fn drop_last_semantics() {
        let s = DistributedSampler::new(10, 3, 0);
        assert_eq!(s.samples_per_rank(), 3); // 10/3, remainder dropped
    }

    #[test]
    fn large_domain_lookup_is_fast_enough() {
        // 11.8M-sample domain, a million lookups — must be well under a sec.
        let p = Permutation::new(11_797_632, 1);
        let t0 = std::time::Instant::now();
        let mut acc = 0u64;
        for i in 0..1_000_000u64 {
            acc = acc.wrapping_add(p.apply(i));
        }
        assert!(acc > 0);
        assert!(t0.elapsed().as_secs_f64() < 2.0);
    }
}
