//! A functional batch loader: really moves bytes.
//!
//! The simulator predicts timings; this loader performs the actual
//! `<open, read, close>` transactions through either the PFS or an HVAC
//! client, in sampler order — integration tests use it to prove the two
//! paths deliver identical streams (Fig. 14's premise) and that repeat
//! epochs stop touching the PFS.

use crate::dataset::DatasetSpec;
use crate::sampler::DistributedSampler;
use bytes::Bytes;
use hvac_core::HvacClient;
use hvac_pfs::FileStore;
use hvac_types::Result;
use std::path::Path;

/// Anything that can fetch one dataset sample by path.
pub trait SampleReader {
    /// Read the full contents of a sample file.
    fn read_sample(&self, path: &Path) -> Result<Bytes>;
}

/// Read samples through the HVAC cache.
pub struct HvacReader<'a>(pub &'a HvacClient);

impl SampleReader for HvacReader<'_> {
    fn read_sample(&self, path: &Path) -> Result<Bytes> {
        self.0.read_file(path)
    }
}

/// Read samples straight from a PFS store (the GPFS baseline).
pub struct PfsReader<'a>(pub &'a dyn FileStore);

impl SampleReader for PfsReader<'_> {
    fn read_sample(&self, path: &Path) -> Result<Bytes> {
        // The same transaction shape: stat (open), read, implicit close.
        let _ = self.0.open_meta(path)?;
        self.0.read_all(path)
    }
}

/// A rank's view of the dataset: shuffled shards per epoch, read in batches.
pub struct BatchLoader {
    dataset_dir: String,
    dataset: DatasetSpec,
    sampler: DistributedSampler,
    batch_size: u32,
}

impl BatchLoader {
    /// Build a loader for a world of `ranks` processes.
    pub fn new(
        dataset_dir: &str,
        dataset: DatasetSpec,
        ranks: u64,
        batch_size: u32,
        seed: u64,
    ) -> Self {
        Self {
            dataset_dir: dataset_dir.to_string(),
            sampler: DistributedSampler::new(dataset.train_samples, ranks, seed),
            dataset,
            batch_size: batch_size.max(1),
        }
    }

    /// The shared sampler.
    pub fn sampler(&self) -> &DistributedSampler {
        &self.sampler
    }

    /// Batches (index, bytes) for one rank and epoch, at most `max_batches`.
    pub fn load_epoch<R: SampleReader>(
        &self,
        reader: &R,
        epoch: u32,
        rank: u64,
        max_batches: usize,
    ) -> Result<Vec<Vec<(u64, Bytes)>>> {
        let mut batches = Vec::new();
        let mut current: Vec<(u64, Bytes)> = Vec::with_capacity(self.batch_size as usize);
        for index in self.sampler.rank_iter(epoch, rank) {
            let path_string = self.dataset.path_of(&self.dataset_dir, index);
            let data = reader.read_sample(Path::new(&path_string))?;
            current.push((index, data));
            if current.len() == self.batch_size as usize {
                batches.push(std::mem::take(&mut current));
                if batches.len() >= max_batches {
                    return Ok(batches);
                }
            }
        }
        if !current.is_empty() {
            batches.push(current);
        }
        Ok(batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_pfs::MemStore;
    use std::sync::Arc;

    fn tiny_dataset() -> (Arc<MemStore>, DatasetSpec) {
        let mut spec = DatasetSpec::imagenet21k().scaled_down(1_000_000); // 11 samples
        spec.train_samples = 24;
        let pfs = Arc::new(MemStore::new());
        for i in 0..spec.train_samples {
            let size = spec.size_of(i).bytes() as usize % 4096 + 16;
            pfs.put(
                spec.path_of("/gpfs/train", i),
                MemStore::sample_content(i, size),
            );
        }
        (pfs, spec)
    }

    #[test]
    fn loads_batches_in_sampler_order() {
        let (pfs, spec) = tiny_dataset();
        let loader = BatchLoader::new("/gpfs/train", spec, 2, 4, 9);
        let reader = PfsReader(pfs.as_ref());
        let batches = loader.load_epoch(&reader, 0, 0, usize::MAX).unwrap();
        // 24 samples / 2 ranks = 12 per rank = 3 batches of 4.
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.len() == 4));
        let order: Vec<u64> = batches.iter().flatten().map(|(i, _)| *i).collect();
        let expect: Vec<u64> = loader.sampler().rank_iter(0, 0).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn max_batches_limits_work() {
        let (pfs, spec) = tiny_dataset();
        let loader = BatchLoader::new("/gpfs/train", spec, 2, 4, 9);
        let reader = PfsReader(pfs.as_ref());
        let batches = loader.load_epoch(&reader, 0, 1, 2).unwrap();
        assert_eq!(batches.len(), 2);
    }

    #[test]
    fn bytes_are_correct() {
        let (pfs, spec) = tiny_dataset();
        let loader = BatchLoader::new("/gpfs/train", spec.clone(), 1, 8, 3);
        let reader = PfsReader(pfs.as_ref());
        let batches = loader.load_epoch(&reader, 1, 0, usize::MAX).unwrap();
        for batch in &batches {
            for (idx, data) in batch {
                let size = spec.size_of(*idx).bytes() as usize % 4096 + 16;
                assert_eq!(*data, MemStore::sample_content(*idx, size));
            }
        }
    }

    #[test]
    fn missing_sample_surfaces_error() {
        let (pfs, mut spec) = tiny_dataset();
        spec.train_samples = 100; // more than exist
        let loader = BatchLoader::new("/gpfs/train", spec, 1, 4, 3);
        let reader = PfsReader(pfs.as_ref());
        assert!(loader.load_epoch(&reader, 0, 0, usize::MAX).is_err());
    }
}
