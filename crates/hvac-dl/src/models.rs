//! DNN compute-time models.
//!
//! The simulator only needs to know how long the accelerators are busy
//! between file reads — the compute side sets the I/O-to-compute overlap
//! ratio, which determines how much of the PFS pain shows up in end-to-end
//! training time. Per-sample times are calibrated to public V100 throughput
//! numbers for each network; parameters count toward the allreduce model.

use hvac_types::{Bandwidth, SimTime};
use serde::{Deserialize, Serialize};

/// A trainable network, as seen by the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnModel {
    /// Name for reports.
    pub name: String,
    /// Trainable parameters (drive allreduce volume).
    pub params: u64,
    /// Forward+backward time per sample on one V100, microseconds.
    pub per_sample_us: f64,
    /// Fraction of per-sample time amortized away at large batch (kernels
    /// saturate): `time(batch) = batch * per_sample * (1 - amort + amort/批)`
    /// is approximated with a mild efficiency curve below.
    pub batch_efficiency: f64,
}

impl DnnModel {
    /// ResNet50: 25.6 M parameters (§IV-A2); ~1,400 img/s/V100 with mixed
    /// precision → ~0.7 ms/sample.
    pub fn resnet50() -> Self {
        Self {
            name: "ResNet50".into(),
            params: 25_600_000,
            per_sample_us: 700.0,
            batch_efficiency: 0.15,
        }
    }

    /// TResNet_M: ~31 M parameters, a bit heavier per sample than ResNet50.
    pub fn tresnet_m() -> Self {
        Self {
            name: "TResNet_M".into(),
            params: 31_000_000,
            per_sample_us: 850.0,
            batch_efficiency: 0.15,
        }
    }

    /// CosmoFlow: the tiny 3D CNN of MLPerf-HPC ("more than 51K parameters",
    /// §IV-A2) over ~2.5 MB volumetric samples — I/O heavy by construction.
    pub fn cosmoflow() -> Self {
        Self {
            name: "CosmoFlow".into(),
            params: 51_000,
            per_sample_us: 1_500.0,
            batch_efficiency: 0.10,
        }
    }

    /// DeepCAM: the Gordon-Bell climate segmentation network (~44 M
    /// parameters) over 27 MB tiles.
    pub fn deepcam() -> Self {
        Self {
            name: "DeepCAM".into(),
            params: 44_000_000,
            per_sample_us: 55_000.0,
            batch_efficiency: 0.10,
        }
    }

    /// Compute time of one iteration over `batch` samples on one training
    /// process (which drives 3 of the node's 6 V100s, as the paper runs two
    /// processes per node). Larger batches amortize kernel launch/sync
    /// overhead slightly — the 2–4 % effect the paper reports in Fig. 12.
    pub fn iteration_compute(&self, batch: u32) -> SimTime {
        const GPUS_PER_PROC: f64 = 3.0;
        let b = batch.max(1) as f64;
        // Per-sample cost shrinks from 1.0 at b=1 toward (1 - e) as the
        // batch grows: cost(b) = 1 - e * (1 - 1/sqrt(b)).
        let per_sample_factor = 1.0 - self.batch_efficiency * (1.0 - 1.0 / b.sqrt());
        let us = b * self.per_sample_us * per_sample_factor / GPUS_PER_PROC;
        SimTime::from_secs_f64(us * 1e-6)
    }

    /// Ring-allreduce time for the model's gradients across `ranks` workers:
    /// `2 (p-1)/p · bytes / bw + 2 (p-1) · latency` with fp32 gradients.
    pub fn allreduce(&self, ranks: u32, bw: Bandwidth, latency: SimTime) -> SimTime {
        if ranks <= 1 {
            return SimTime::ZERO;
        }
        let p = ranks as f64;
        let bytes = (self.params * 4) as f64;
        let volume_secs = 2.0 * (p - 1.0) / p * bytes / bw.as_bytes_per_sec();
        let latency_secs = 2.0 * (p - 1.0).log2().max(1.0) * latency.as_secs_f64();
        SimTime::from_secs_f64(volume_secs + latency_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        // DeepCAM's huge tiles make it the heaviest per sample; CosmoFlow has
        // by far the fewest parameters.
        assert!(DnnModel::deepcam().per_sample_us > DnnModel::resnet50().per_sample_us);
        assert!(DnnModel::cosmoflow().params < DnnModel::resnet50().params / 100);
    }

    #[test]
    fn compute_scales_roughly_linearly_with_batch() {
        let m = DnnModel::resnet50();
        let t1 = m.iteration_compute(1).as_secs_f64();
        let t64 = m.iteration_compute(64).as_secs_f64();
        let ratio = t64 / t1;
        assert!(ratio > 50.0 && ratio < 66.0, "ratio {ratio}");
    }

    #[test]
    fn larger_batches_are_slightly_more_efficient_per_sample() {
        // Fig. 12: 2–4 % improvement from batch amortization.
        let m = DnnModel::tresnet_m();
        let per4 = m.iteration_compute(4).as_secs_f64() / 4.0;
        let per128 = m.iteration_compute(128).as_secs_f64() / 128.0;
        let gain = 1.0 - per128 / per4;
        assert!(gain > 0.01 && gain < 0.10, "gain {gain}");
    }

    #[test]
    fn allreduce_grows_with_ranks_and_params() {
        let bw = Bandwidth::gb_per_sec(25.0);
        let lat = SimTime::from_micros(2);
        let small = DnnModel::cosmoflow().allreduce(64, bw, lat);
        let big = DnnModel::resnet50().allreduce(64, bw, lat);
        assert!(big > small);
        let r2 = DnnModel::resnet50().allreduce(2, bw, lat);
        let r1024 = DnnModel::resnet50().allreduce(2048, bw, lat);
        assert!(r1024 > r2);
        assert_eq!(DnnModel::resnet50().allreduce(1, bw, lat), SimTime::ZERO);
    }

    #[test]
    fn allreduce_volume_term_matches_formula() {
        let bw = Bandwidth::gb_per_sec(10.0);
        let m = DnnModel::resnet50();
        let t = m.allreduce(1_000_000, bw, SimTime::ZERO).as_secs_f64();
        // p→∞: 2 * bytes / bw.
        let expect = 2.0 * (m.params * 4) as f64 / 10e9;
        assert!((t - expect).abs() / expect < 0.01);
    }
}
