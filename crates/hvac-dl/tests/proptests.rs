//! Property-based tests for the workload layer: the Feistel permutation is
//! a bijection for every domain, shards partition the dataset, sizes are
//! deterministic and calibrated.

use hvac_dl::dataset::{DatasetSpec, SizeDistribution};
use hvac_dl::sampler::{DistributedSampler, Permutation};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn permutation_bijective_for_any_domain(n in 1u64..5_000, seed in any::<u64>()) {
        let p = Permutation::new(n, seed);
        let mut seen = HashSet::with_capacity(n as usize);
        for i in 0..n {
            let x = p.apply(i);
            prop_assert!(x < n);
            prop_assert!(seen.insert(x), "duplicate image {x}");
        }
    }

    #[test]
    fn sampler_shards_partition_dataset(
        n in 1u64..2_000,
        world in 1u64..16,
        epoch in 0u32..8,
        seed in any::<u64>(),
    ) {
        let s = DistributedSampler::new(n, world, seed);
        let mut seen = HashSet::new();
        for rank in 0..world {
            for idx in s.rank_iter(epoch, rank) {
                prop_assert!(idx < n);
                prop_assert!(seen.insert(idx), "index {idx} appears in two shards");
            }
        }
        prop_assert_eq!(seen.len() as u64, s.samples_per_rank() * world);
        prop_assert!(seen.len() as u64 <= n);
        prop_assert!(n - (seen.len() as u64) < world, "drop_last loses < world items");
    }

    #[test]
    fn dataset_sizes_deterministic_and_positive(
        samples in 1u64..100_000,
        mean_kb in 1u64..10_000,
        idx in any::<u64>(),
        sigma in 0.1f64..1.5,
    ) {
        let idx = idx % samples;
        for dist in [
            SizeDistribution::Fixed,
            SizeDistribution::Uniform { spread: 0.3 },
            SizeDistribution::LogNormal { sigma },
        ] {
            let spec = DatasetSpec {
                name: "prop".into(),
                train_samples: samples,
                mean_size: hvac_types::ByteSize::kib(mean_kb),
                size_dist: dist,
                seed: 7,
            };
            let a = spec.size_of(idx);
            prop_assert_eq!(a, spec.size_of(idx));
            prop_assert!(a.bytes() >= 1);
        }
    }

    #[test]
    fn uniform_sizes_within_bounds(idx in any::<u64>(), spread in 0.01f64..0.9) {
        let spec = DatasetSpec {
            name: "prop".into(),
            train_samples: u64::MAX,
            mean_size: hvac_types::ByteSize::kib(100),
            size_dist: SizeDistribution::Uniform { spread },
            seed: 3,
        };
        let s = spec.size_of(idx).as_f64();
        let mean = spec.mean_size.as_f64();
        prop_assert!(s >= mean * (1.0 - spread) - 1.0);
        prop_assert!(s <= mean * (1.0 + spread) + 1.0);
    }

    #[test]
    fn scaled_down_preserves_per_sample_sizes(factor in 1u64..1_000, idx in 0u64..10_000) {
        let full = DatasetSpec::imagenet21k();
        let small = full.scaled_down(factor);
        prop_assert_eq!(full.size_of(idx), small.size_of(idx));
        prop_assert!(small.train_samples >= 1);
    }

    #[test]
    fn epoch_permutations_differ_but_cover_same_set(n in 2u64..500, seed in any::<u64>()) {
        let s = DistributedSampler::new(n, 1, seed);
        let e0: Vec<u64> = s.rank_iter(0, 0).collect();
        let e1: Vec<u64> = s.rank_iter(1, 0).collect();
        let set0: HashSet<u64> = e0.iter().copied().collect();
        let set1: HashSet<u64> = e1.iter().copied().collect();
        prop_assert_eq!(set0, set1, "epochs must cover the same samples");
        if n > 16 {
            // With ≥17 elements two independent shuffles virtually never agree.
            prop_assert_ne!(e0, e1, "epochs must reshuffle");
        }
    }
}
