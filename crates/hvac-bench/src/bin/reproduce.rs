//! Regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce [--quick] [--csv-dir DIR] [all | table1 | fig3 | fig4 | fig8 |
//!            fig9 | fig10 | fig11 | fig12 | fig13 | fig14 | fig15 | ablation]...
//! ```
//!
//! With no figure arguments, everything runs. `--quick` shrinks node counts
//! and simulated iterations (seconds instead of minutes). CSVs land in
//! `results/` (or `--csv-dir`).

use hvac_bench::figures;
use hvac_bench::report::Table;
use std::path::PathBuf;
use std::time::Instant;

const ALL: &[&str] = &[
    "table1", "fig3", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "ablation",
];

fn main() {
    let mut quick = false;
    let mut csv_dir = PathBuf::from("results");
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--csv-dir" => {
                csv_dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--csv-dir needs a path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [--quick] [--csv-dir DIR] [{}]...",
                    ALL.join(" | ")
                );
                return;
            }
            "all" => selected.extend(ALL.iter().map(|s| s.to_string())),
            other if ALL.contains(&other) => selected.push(other.to_string()),
            other => {
                eprintln!("unknown figure '{other}'; known: {}", ALL.join(", "));
                std::process::exit(2);
            }
        }
    }
    if selected.is_empty() {
        selected.extend(ALL.iter().map(|s| s.to_string()));
    }
    selected.dedup();

    println!(
        "HVAC reproduction harness — mode: {}, output: {}",
        if quick { "quick" } else { "full (paper-scale)" },
        csv_dir.display()
    );
    println!(
        "Calibration: GPFS {} aggregate, {} MDS x {} us/op; NVMe {}/node; see DESIGN.md\n",
        hvac_types::GpfsConfig::default().aggregate_bandwidth,
        hvac_types::GpfsConfig::default().mds_count,
        hvac_types::GpfsConfig::default().mds_op_ns / 1000,
        hvac_types::NvmeConfig::default().read_bandwidth,
    );

    // Fig. 8's sweep feeds Fig. 9; compute it once if either is requested.
    let need_sweep = selected.iter().any(|s| s == "fig8" || s == "fig9");
    let sweep = if need_sweep {
        let t0 = Instant::now();
        let s = figures::fig8::sweep(quick);
        eprintln!(
            "[sweep] fig8 training sweep done in {:.1}s",
            t0.elapsed().as_secs_f64()
        );
        Some(s)
    } else {
        None
    };

    for name in &selected {
        let t0 = Instant::now();
        let tables: Vec<Table> = match name.as_str() {
            "table1" => figures::table1::run(quick),
            "fig3" => figures::fig3::run(quick),
            "fig4" => figures::fig4::run(quick),
            "fig8" => match sweep.as_ref() {
                Some(s) => figures::fig8::tables(s),
                None => unreachable!("need_sweep covers the fig8 selection"),
            },
            "fig9" => match sweep.as_ref() {
                Some(s) => figures::fig9::tables(s),
                None => unreachable!("need_sweep covers the fig9 selection"),
            },
            "fig10" => figures::fig10::run(quick),
            "fig11" => figures::fig11::run(quick),
            "fig12" => figures::fig12::run(quick),
            "fig13" => figures::fig13::run(quick),
            "fig14" => figures::fig14::run(quick),
            "fig15" => figures::fig15::run(quick),
            "ablation" => figures::ablation::run(quick),
            _ => unreachable!("validated above"),
        };
        for table in &tables {
            println!("{}", table.render());
            match table.write_csv(&csv_dir) {
                Ok(path) => println!("   -> {}\n", path.display()),
                Err(e) => eprintln!("   !! failed to write CSV: {e}"),
            }
        }
        eprintln!("[done] {name} in {:.1}s\n", t0.elapsed().as_secs_f64());
    }
}
