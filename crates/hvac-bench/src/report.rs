//! Result tables: aligned terminal printing + CSV output.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// One figure/table worth of results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Identifier ("fig8a", "table1", ...): also the CSV file stem.
    pub id: String,
    /// Human-readable caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row-major cells, all pre-formatted.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Build with string-ish inputs.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: Vec<impl Into<String>>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push_row(&mut self, row: Vec<impl Into<String>>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:>width$}", cell, width = widths[i]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.columns, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Render as CSV (header + rows; commas in cells are quoted).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| field(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write `<dir>/<id>.csv`, creating the directory.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Format minutes with sensible precision.
pub fn fmt_minutes(m: f64) -> String {
    if m >= 100.0 {
        format!("{m:.0}")
    } else if m >= 1.0 {
        format!("{m:.2}")
    } else {
        format!("{m:.4}")
    }
}

/// Format a ratio as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t1", "demo", vec!["nodes", "tps"]);
        t.push_row(vec!["2", "100"]);
        t.push_row(vec!["1024", "99999"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        assert!(s.contains("== t1 — demo =="));
        assert!(s.contains("nodes"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and both rows present (title + header + rule + 2 rows).
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", "x", vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn csv_round_trip_and_quoting() {
        let mut t = Table::new("q", "quoting", vec!["name", "value"]);
        t.push_row(vec!["plain", "1"]);
        t.push_row(vec!["with,comma", "with\"quote"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("name,value\n"));
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join(format!("hvac-report-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = sample().write_csv(&dir).unwrap();
        assert!(path.ends_with("t1.csv"));
        assert!(fs::read_to_string(&path).unwrap().contains("1024"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_minutes(123.4), "123");
        assert_eq!(fmt_minutes(12.345), "12.35");
        assert_eq!(fmt_minutes(0.5), "0.5000");
        assert_eq!(fmt_pct(0.251), "25.1%");
    }
}
