//! Fig. 10 — effect of the number of epochs on training time, ResNet50 and
//! CosmoFlow at 512 nodes.
//!
//! Expected shape: linear in epochs for every system, with HVAC's slope near
//! XFS's (only epoch 1 pays the PFS) and GPFS's slope far steeper.

use crate::report::{fmt_minutes, Table};
use crate::systems::{paper_apps, SystemKind};
use hvac_dl::{simulate_training, TrainingConfig};

/// Epoch counts swept (the paper scales to 80).
pub fn epoch_scales(quick: bool) -> Vec<u32> {
    if quick {
        vec![2, 4, 8]
    } else {
        vec![2, 4, 8, 16, 32, 64, 80]
    }
}

/// Run the Fig. 10 sweep: one table per application.
pub fn run(quick: bool) -> Vec<Table> {
    let nodes = if quick { 32 } else { 512 };
    let apps = paper_apps();
    let selected = [
        (apps[0].clone(), 80u32, "fig10a"), // ResNet50 [BS=80]
        (apps[2].clone(), 8u32, "fig10b"),  // CosmoFlow
    ];
    let max_epochs = epoch_scales(quick).last().copied().unwrap_or(2);
    let mut out = Vec::new();
    for (app, bs, id) in selected {
        let mut t = Table::new(
            id,
            format!(
                "{}: training time (minutes) vs epochs [BS={bs}, nNodes={nodes}]",
                app.name()
            ),
            vec![
                "epochs",
                "GPFS",
                "HVAC(1x1)",
                "HVAC(2x1)",
                "HVAC(4x1)",
                "XFS-on-NVMe",
            ],
        );
        // Simulate once at the maximum epoch count; totals for smaller
        // counts are prefix sums of the per-epoch times.
        let mut cfg = TrainingConfig::new(app.dataset.clone(), app.model.clone(), nodes)
            .batch_size(bs)
            .epochs(max_epochs);
        cfg.max_sim_iters = if quick { 2 } else { 6 };
        let mut per_system: Vec<(String, Vec<f64>)> = Vec::new();
        for system in SystemKind::all() {
            let mut backend = system.make_backend(nodes, 0xF10);
            let result = simulate_training(backend.as_mut(), &cfg);
            let mut prefix = Vec::with_capacity(result.epoch_times.len());
            let mut acc = 0.0;
            for e in &result.epoch_times {
                acc += e.as_minutes_f64();
                prefix.push(acc);
            }
            per_system.push((system.label(), prefix));
        }
        for &epochs in &epoch_scales(quick) {
            let mut row = vec![epochs.to_string()];
            for (_, prefix) in &per_system {
                row.push(fmt_minutes(prefix[epochs as usize - 1]));
            }
            t.push_row(row);
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_growth_and_slope_ordering() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        for t in &tables {
            let minutes = |row: usize, col: usize| -> f64 { t.rows[row][col].parse().unwrap() };
            // Column 1 = GPFS, 4 = HVAC(4x1), 5 = XFS.
            let rows = t.rows.len();
            // Monotone in epochs for every system.
            for col in 1..=5 {
                for r in 1..rows {
                    assert!(
                        minutes(r, col) >= minutes(r - 1, col),
                        "{}: col {col}",
                        t.id
                    );
                }
            }
            // GPFS slope >= HVAC(4x1) slope >= XFS slope (between 2 and 8 eps).
            let slope = |col: usize| (minutes(rows - 1, col) - minutes(0, col)).max(1e-9);
            assert!(slope(1) >= slope(4) * 0.999, "{}", t.id);
            assert!(slope(4) >= slope(5) * 0.999, "{}", t.id);
        }
    }
}
