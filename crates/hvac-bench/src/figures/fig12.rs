//! Fig. 12 — impact of batch size on training time (TResNet_M with 80
//! epochs, DeepCAM), at 512 nodes.
//!
//! Expected shape (paper §IV-D): increasing batch size from 4 to 128 only
//! improves training time by ~2–4 % — for *every* system — because batching
//! amortizes per-iteration overhead but the bytes moved stay the same. The
//! paper's conclusion: batch size does not change the GPFS-vs-HVAC story.

use crate::report::{fmt_minutes, Table};
use crate::systems::{paper_apps, SystemKind};
use hvac_dl::{simulate_training, TrainingConfig};

/// Batch sizes swept.
pub fn batch_scales(quick: bool, deepcam: bool) -> Vec<u32> {
    match (quick, deepcam) {
        (true, false) => vec![4, 32, 128],
        (false, false) => vec![4, 8, 16, 32, 64, 128],
        (true, true) => vec![2, 8],
        (false, true) => vec![2, 4, 8, 16, 32],
    }
}

/// Run the batch-size sweep: TResNet_M and DeepCAM tables.
pub fn run(quick: bool) -> Vec<Table> {
    let nodes = if quick { 32 } else { 512 };
    let apps = paper_apps();
    let selected = [
        (apps[1].clone(), false, 80u32, "fig12a"), // TResNet_M [Eps=80]
        (apps[3].clone(), true, 10u32, "fig12b"),  // DeepCAM
    ];
    let mut out = Vec::new();
    for (app, is_deepcam, epochs, id) in selected {
        let mut t = Table::new(
            id,
            format!(
                "{}: training time (minutes) vs batch size [Eps={epochs}, nNodes={nodes}]",
                app.name()
            ),
            vec![
                "batch",
                "GPFS",
                "HVAC(1x1)",
                "HVAC(2x1)",
                "HVAC(4x1)",
                "XFS-on-NVMe",
            ],
        );
        for bs in batch_scales(quick, is_deepcam) {
            let mut cfg = TrainingConfig::new(app.dataset.clone(), app.model.clone(), nodes)
                .batch_size(bs)
                .epochs(if quick { 4 } else { epochs });
            cfg.max_sim_iters = if quick { 2 } else { 4 };
            let mut row = vec![bs.to_string()];
            for system in SystemKind::all() {
                let mut backend = system.make_backend(nodes, 0xF12);
                let r = simulate_training(backend.as_mut(), &cfg);
                row.push(fmt_minutes(r.total_minutes()));
            }
            t.push_row(row);
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_size_has_modest_effect() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        let t = &tables[0]; // TResNet_M
        let first: f64 = t.rows.first().unwrap()[1].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        // Bigger batches help, and never by an order of magnitude. (At the
        // quick 32-node scale the job is compute/allreduce-bound so the
        // amortization effect is larger than the paper's 2–4 %; the full
        // 512-node run is I/O-bound and lands in the paper's band — see
        // EXPERIMENTS.md.)
        let gain = 1.0 - last / first;
        assert!(gain > -0.05 && gain < 0.6, "GPFS batch gain {gain}");
    }

    #[test]
    fn system_ordering_holds_at_every_batch_size() {
        for t in run(true) {
            for row in &t.rows {
                let gpfs: f64 = row[1].parse().unwrap();
                let h4: f64 = row[4].parse().unwrap();
                let xfs: f64 = row[5].parse().unwrap();
                assert!(xfs <= h4 * 1.001, "{}: {row:?}", t.id);
                // Quick mode runs at 32 nodes where DeepCAM's huge samples
                // make HVAC ~tie with GPFS; allow 25 % headroom (the full
                // 512-node sweep shows HVAC winning cleanly).
                assert!(h4 <= gpfs * 1.25, "{}: {row:?}", t.id);
            }
        }
    }
}
