//! One module per paper artifact. Every module exposes `run(quick) ->
//! Vec<Table>` (figures with shared expensive sweeps also expose the raw
//! sweep so the `reproduce` binary can compute it once).
//!
//! `quick = true` shrinks node counts and simulated iterations so the whole
//! suite runs in seconds (used by Criterion benches and CI); `quick = false`
//! runs the paper-scale sweeps.

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig3;
pub mod fig4;
pub mod fig8;
pub mod fig9;
pub mod table1;
