//! Fig. 4 — MDTest: 8 MiB random `<open-read-close>` transactions per
//! second. At this size the bottleneck shifts from metadata to bandwidth:
//! GPFS caps at ~2.5 TB/s aggregate (~300 K txn/s) while the NVMe aggregate
//! reaches 22.5 TB/s at 4,096 nodes (§II-C).

use crate::figures::fig3::mdtest_table;
use crate::report::Table;
use hvac_types::ByteSize;

/// Run the Fig. 4 sweep.
pub fn run(quick: bool) -> Vec<Table> {
    vec![mdtest_table(
        "fig4",
        "MDTest 8 MiB open-read-close transactions/s (GPFS vs XFS-on-NVMe)",
        ByteSize::mib(8),
        quick,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig3;

    #[test]
    fn bandwidth_bound_shape() {
        // Full sweep is cheap for MDTest; check the 4096-node endpoints.
        let t = &run(false)[0];
        let last = t.rows.last().unwrap();
        let gpfs_tps: f64 = last[1].parse().unwrap();
        let xfs_tps: f64 = last[2].parse().unwrap();
        // GPFS ceiling: 2.5 TB/s / 8 MiB ≈ 298 K. Stay within 2x below it.
        let ceiling = 2.5e12 / (8.0 * 1024.0 * 1024.0);
        assert!(gpfs_tps <= ceiling * 1.05, "gpfs {gpfs_tps} above ceiling");
        assert!(
            gpfs_tps >= ceiling * 0.4,
            "gpfs {gpfs_tps} far below ceiling"
        );
        // XFS aggregate: 22.5 TB/s / 8 MiB ≈ 2.68 M txn/s — ~9x GPFS.
        let ratio = xfs_tps / gpfs_tps;
        assert!(ratio > 5.0 && ratio < 15.0, "ratio {ratio}");
    }

    #[test]
    fn large_files_lower_tps_than_small() {
        let small = &fig3::run(true)[0];
        let large = &run(true)[0];
        for (rs, rl) in small.rows.iter().zip(&large.rows) {
            let s: f64 = rs[2].parse().unwrap();
            let l: f64 = rl[2].parse().unwrap();
            assert!(s > l, "XFS 32KiB tps {s} should exceed 8MiB tps {l}");
        }
    }
}
