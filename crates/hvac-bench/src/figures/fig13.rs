//! Fig. 13 — impact of cache locality on HVAC(1×1): what fraction of the
//! dataset is resident on the training node itself (L%) vs on remote nodes
//! (R%), at 512 nodes [BS=80].
//!
//! Expected shape (paper §IV-E): *negligible* differences — Mercury-style
//! bulk transfers over the fat InfiniBand NIC make remote NVMe nearly as
//! close as local NVMe, which is what justifies hash placement ignoring
//! topology.

use crate::report::{fmt_minutes, Table};
use crate::systems::paper_apps;
use hvac_dl::{simulate_training, TrainingConfig};
use hvac_sim::iostack::HvacBackend;
use hvac_types::ClusterConfig;

/// The L/R splits of the figure.
pub fn splits() -> Vec<(u32, u32)> {
    vec![(100, 0), (75, 25), (50, 50), (25, 75), (0, 100)]
}

/// Run the locality sweep on HVAC(1×1).
pub fn run(quick: bool) -> Vec<Table> {
    let nodes = if quick { 16 } else { 512 };
    let app = &paper_apps()[0]; // ResNet50 on ImageNet-21K
    let mut cfg = TrainingConfig::new(app.dataset.clone(), app.model.clone(), nodes)
        .batch_size(80)
        .epochs(if quick { 3 } else { 10 });
    cfg.max_sim_iters = if quick { 2 } else { 6 };

    let mut t = Table::new(
        "fig13",
        format!("HVAC(1x1): training time (minutes) vs local/remote cache split [BS=80, nNodes={nodes}]"),
        vec!["L%/R%", "total_minutes", "warm_epoch_minutes"],
    );
    for (l, r) in splits() {
        let cluster = ClusterConfig::with_nodes(nodes);
        let mut backend = HvacBackend::new(&cluster, 0xF13).with_locality_split(l as f64 / 100.0);
        let res = simulate_training(&mut backend, &cfg);
        t.push_row(vec![
            format!("{l}/{r}"),
            fmt_minutes(res.total_minutes()),
            fmt_minutes(res.best_random_epoch().as_minutes_f64()),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_differences_are_negligible() {
        let t = &run(true)[0];
        assert_eq!(t.rows.len(), 5);
        let totals: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let min = totals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = totals.iter().cloned().fold(0.0, f64::max);
        // The paper reports a negligible spread; allow 15 % in the model.
        assert!(
            max / min < 1.15,
            "locality split should barely matter: min {min}, max {max}"
        );
        // All-local is never slower than all-remote.
        assert!(totals[0] <= totals[4] * 1.001);
    }
}
