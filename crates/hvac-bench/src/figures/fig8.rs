//! Fig. 8 — training time vs. number of compute nodes for the four DL
//! applications, comparing GPFS, HVAC (1×1 / 2×1 / 4×1) and XFS-on-NVMe.
//!
//! Expected shape (paper §IV-B): GPFS stops improving past a few hundred
//! nodes and regresses at 1,024 (metadata overload); every HVAC variant
//! keeps scaling; HVAC sits between GPFS and the XFS upper bound.

use crate::report::{fmt_minutes, Table};
use crate::systems::{paper_apps, AppSpec, SystemKind};
use hvac_dl::{simulate_training, TrainingConfig, TrainingResult};

/// One simulated (application, nodes, system) cell.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Application name.
    pub app: String,
    /// Node count.
    pub nodes: u32,
    /// System under test.
    pub system: SystemKind,
    /// Simulated training outcome.
    pub result: TrainingResult,
}

/// Node counts swept ("single node to 1,024" in the paper; we start at 8 so
/// every config has at least one full batch per rank).
pub fn node_scales(quick: bool) -> Vec<u32> {
    if quick {
        vec![8, 32]
    } else {
        vec![8, 32, 128, 256, 450, 512, 1024]
    }
}

/// The training configuration of one Fig. 8 cell.
pub fn cell_config(app: &AppSpec, nodes: u32, quick: bool) -> TrainingConfig {
    let mut cfg = TrainingConfig::new(app.dataset.clone(), app.model.clone(), nodes)
        .batch_size(app.batch_size)
        .epochs(if quick { 3 } else { 10 });
    cfg.max_sim_iters = if quick { 2 } else { 6 };
    cfg
}

/// Simulate the full (apps × nodes × systems) sweep.
pub fn sweep(quick: bool) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for app in paper_apps() {
        for nodes in node_scales(quick) {
            let cfg = cell_config(&app, nodes, quick);
            for system in SystemKind::all() {
                let mut backend = system.make_backend(nodes, 0xF18);
                let result = simulate_training(backend.as_mut(), &cfg);
                points.push(SweepPoint {
                    app: app.name().to_string(),
                    nodes,
                    system,
                    result,
                });
            }
        }
    }
    points
}

/// Render Fig. 8 (a)–(d): one table per application, training minutes per
/// system per node count.
pub fn tables(points: &[SweepPoint]) -> Vec<Table> {
    let mut out = Vec::new();
    let apps: Vec<String> = {
        let mut seen = Vec::new();
        for p in points {
            if !seen.contains(&p.app) {
                seen.push(p.app.clone());
            }
        }
        seen
    };
    for (i, app) in apps.iter().enumerate() {
        let letter = (b'a' + i as u8) as char;
        let mut t = Table::new(
            format!("fig8{letter}"),
            format!("{app}: training time (minutes) vs nodes"),
            vec![
                "nodes",
                "GPFS",
                "HVAC(1x1)",
                "HVAC(2x1)",
                "HVAC(4x1)",
                "XFS-on-NVMe",
            ],
        );
        let mut nodes_list: Vec<u32> = points
            .iter()
            .filter(|p| &p.app == app)
            .map(|p| p.nodes)
            .collect();
        nodes_list.sort_unstable();
        nodes_list.dedup();
        for nodes in nodes_list {
            let mut row = vec![nodes.to_string()];
            for system in SystemKind::all() {
                let p = points
                    .iter()
                    .find(|p| &p.app == app && p.nodes == nodes && p.system == system)
                    .unwrap_or_else(|| {
                        panic!("sweep has no point for {app} @ {nodes} nodes ({system:?})")
                    });
                row.push(fmt_minutes(p.result.total_minutes()));
            }
            t.push_row(row);
        }
        out.push(t);
    }
    out
}

/// Run the sweep and render the tables.
pub fn run(quick: bool) -> Vec<Table> {
    tables(&sweep(quick))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_complete_and_ordered() {
        let points = sweep(true);
        // 4 apps x 2 node counts x 5 systems.
        assert_eq!(points.len(), 4 * 2 * 5);
        let tables = tables(&points);
        assert_eq!(tables.len(), 4);
        assert_eq!(tables[0].id, "fig8a");
        assert_eq!(tables[0].rows.len(), 2);

        // Invariant per cell: XFS <= HVAC(4x1) <= HVAC(1x1), HVAC <= GPFS*1.05.
        for app in ["ResNet50", "TResNet_M", "CosmoFlow", "DeepCAM"] {
            for nodes in node_scales(true) {
                let get = |sys: SystemKind| -> f64 {
                    points
                        .iter()
                        .find(|p| p.app == app && p.nodes == nodes && p.system == sys)
                        .unwrap()
                        .result
                        .total_minutes()
                };
                let gpfs = get(SystemKind::Gpfs);
                let h1 = get(SystemKind::Hvac(1));
                let h4 = get(SystemKind::Hvac(4));
                let xfs = get(SystemKind::Xfs);
                // At quick scales (8/32 nodes) the instance count barely
                // matters and placement noise is visible; the ordering is
                // asserted up to ~5 % (the full sweep shows it cleanly).
                assert!(xfs <= h4 * 1.02, "{app}@{nodes}: xfs {xfs} vs h4 {h4}");
                assert!(h4 <= h1 * 1.05, "{app}@{nodes}: h4 {h4} vs h1 {h1}");
                assert!(h1 <= gpfs * 1.25, "{app}@{nodes}: h1 {h1} vs gpfs {gpfs}");
            }
        }
    }
}
