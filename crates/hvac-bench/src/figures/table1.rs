//! Table I — the Summit compute-node specification.

use crate::report::Table;

/// Render Table I from the constants in `hvac_types::summit`.
pub fn run(_quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "table1",
        "The compute node specification of Summit",
        vec!["Attribute", "Description"],
    );
    for (k, v) in hvac_types::summit::table1_rows() {
        t.push_row(vec![k.to_string(), v]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn has_six_attributes() {
        let tables = super::run(false);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 6);
        assert!(tables[0].render().contains("NVIDIA Tesla Volta"));
    }
}
