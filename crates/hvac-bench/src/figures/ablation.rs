//! Design-choice ablations (not in the paper, but answering the questions
//! its §III leaves open):
//!
//! * **Placement** — §III-E picks plain modulo hashing; how do jump,
//!   rendezvous, ring and straw2 compare on balance, and what fraction of
//!   files move when the allocation grows by one node (the elasticity the
//!   alternatives are supposed to buy)?
//! * **Eviction** — §III-G picks random eviction; how do FIFO/LRU/LFU
//!   compare on hit rate when the dataset exceeds the aggregate cache, under
//!   the re-read-everything-each-epoch access pattern? (Theory says: under
//!   uniform random re-reads nothing beats random by much — worth measuring.)
//! * **Prefetch** — §IV-C proposes pre-populating the cache to remove the
//!   epoch-1 penalty; how much does staged warm-up buy per job length?
//! * **Topology** — §IV-G proposes topology-aware placement; how often do
//!   the naive replica schemes co-locate both copies of a file in one rack?
//! * **Latency tails** — barrier-synchronized training stalls on the
//!   slowest read; where do p50/p99/max access latencies sit per system?

use crate::report::{fmt_pct, Table};
use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_hash::pathhash::mix64;
use hvac_hash::placement::{
    JumpPlacement, ModuloPlacement, Placement, RendezvousPlacement, RingPlacement, Straw2Placement,
};
use hvac_hash::stats::{DistributionStats, LoadCdf};
use hvac_pfs::MemStore;
use hvac_types::{ByteSize, EvictionPolicyKind, FileId};
use std::path::Path;
use std::sync::Arc;

/// One topology-ablation case: label, baseline placement, topology-aware
/// counterpart.
type TopologyCase = (&'static str, Box<dyn Placement>, Box<dyn Placement>);

fn placements() -> Vec<Box<dyn Placement>> {
    vec![
        Box::new(ModuloPlacement),
        Box::new(JumpPlacement),
        Box::new(RendezvousPlacement),
        Box::new(RingPlacement::default()),
        Box::new(Straw2Placement::new()),
    ]
}

/// Balance and elasticity of every placement algorithm.
pub fn placement_table(quick: bool) -> Table {
    let n_files: u64 = if quick { 50_000 } else { 500_000 };
    let servers = 512usize;
    let mut t = Table::new(
        "ablation_placement",
        format!("Placement ablation: {n_files} files over {servers} servers"),
        vec![
            "algorithm",
            "peak/mean",
            "cdf_dev",
            "jain",
            "moved_on_grow", // fraction of files whose home changes 512->513
        ],
    );
    for p in placements() {
        let mut counts = vec![0u64; servers];
        let mut moved = 0u64;
        for i in 0..n_files {
            let fid = FileId(mix64(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            let home = p.home(fid, servers);
            counts[home] += 1;
            if p.home(fid, servers + 1) != home {
                moved += 1;
            }
        }
        let stats = DistributionStats::from_counts(&counts);
        let cdf = LoadCdf::from_counts(&counts);
        t.push_row(vec![
            p.name().to_string(),
            format!("{:.4}", stats.peak_to_mean),
            format!("{:.4}", cdf.max_deviation),
            format!("{:.4}", stats.jain_index),
            fmt_pct(moved as f64 / n_files as f64),
        ]);
    }
    t
}

/// Hit rates of the eviction policies on a functional cluster whose cache
/// holds only part of the dataset, over shuffled epochs.
pub fn eviction_table(quick: bool) -> Table {
    let (n_files, epochs) = if quick { (120u64, 2u32) } else { (400, 3) };
    let file_size = 1_000usize;
    // Aggregate cache: 4 nodes x capacity = half the dataset.
    let per_node_capacity = ByteSize((n_files * file_size as u64) / 8);
    let mut t = Table::new(
        "ablation_eviction",
        format!(
            "Eviction ablation: {n_files} files, aggregate cache holds ~50%, {epochs} shuffled epochs"
        ),
        vec!["policy", "hit_rate", "evictions", "pfs_copies", "bypass_reads"],
    );
    for kind in [
        EvictionPolicyKind::Random,
        EvictionPolicyKind::Fifo,
        EvictionPolicyKind::Lru,
        EvictionPolicyKind::Lfu,
        EvictionPolicyKind::MinIo,
    ] {
        let pfs = Arc::new(MemStore::new());
        pfs.synthesize_dataset(Path::new("/gpfs/train"), n_files, |_| file_size);
        let cluster = Cluster::new(
            pfs,
            ClusterOptions::new(4, 1)
                .dataset_dir("/gpfs/train")
                .cache_capacity(per_node_capacity)
                .eviction(kind),
        )
        .unwrap_or_else(|e| panic!("ablation cluster construction failed: {e}"));
        let sampler = hvac_dl::DistributedSampler::new(n_files, 4, 99);
        for epoch in 0..epochs {
            for rank in 0..4u64 {
                for idx in sampler.rank_iter(epoch, rank) {
                    let path = format!("/gpfs/train/sample_{idx:08}.bin");
                    cluster
                        .client(rank as usize)
                        .read_file(Path::new(&path))
                        .unwrap_or_else(|e| panic!("cache read of {path} failed: {e}"));
                }
            }
        }
        let agg = cluster.aggregate_metrics();
        t.push_row(vec![
            format!("{kind:?}"),
            fmt_pct(agg.hit_rate()),
            agg.evictions.to_string(),
            agg.pfs_copies.to_string(),
            agg.pfs_bypass_reads.to_string(),
        ]);
    }
    t
}

/// The §IV-C prefetch extension: staged warm-up vs demand-paged epoch 1.
pub fn prefetch_table(quick: bool) -> Table {
    use crate::systems::paper_apps;
    use hvac_dl::{simulate_training, TrainingConfig};
    use hvac_sim::iostack::HvacBackend;
    use hvac_types::{ClusterConfig, GpfsConfig};

    let nodes = if quick { 32 } else { 512 };
    let app = &paper_apps()[0]; // ResNet50
    let mut t = Table::new(
        "ablation_prefetch",
        format!(
            "Prefetch (§IV-C): staged warm-up vs demand-paged epoch 1 [ResNet50, nNodes={nodes}]"
        ),
        vec![
            "epochs",
            "cold_total_min",
            "staged_total_min",
            "staging_min",
            "epoch1_cold_min",
            "epoch1_staged_min",
        ],
    );
    for epochs in [2u32, 10] {
        let mut cfg = TrainingConfig::new(app.dataset.clone(), app.model.clone(), nodes)
            .batch_size(app.batch_size)
            .epochs(epochs);
        cfg.max_sim_iters = if quick { 2 } else { 4 };
        let mut cc = ClusterConfig::with_nodes(nodes);
        cc.gpfs = GpfsConfig::shared_alpine();

        let cold = simulate_training(&mut HvacBackend::new(&cc, 0xAB), &cfg);
        cfg.prefetch = true;
        let staged = simulate_training(&mut HvacBackend::new(&cc, 0xAB), &cfg);
        t.push_row(vec![
            epochs.to_string(),
            crate::report::fmt_minutes(cold.total_minutes()),
            crate::report::fmt_minutes(staged.total_minutes()),
            crate::report::fmt_minutes(staged.prefetch_time.as_minutes_f64()),
            crate::report::fmt_minutes(cold.first_epoch().as_minutes_f64()),
            crate::report::fmt_minutes(staged.first_epoch().as_minutes_f64()),
        ]);
    }
    t
}

/// The §IV-G topology extension: fraction of files whose k=2 replicas share
/// a rack, per placement, with and without topology-aware re-ranking.
pub fn topology_table(quick: bool) -> Table {
    use hvac_hash::topology::{Topology, TopologyAware};
    let n_files: u64 = if quick { 5_000 } else { 200_000 };
    let servers = 512usize;
    let per_rack = 18usize; // Summit cabinets hold 18 nodes
    let mut t = Table::new(
        "ablation_topology",
        format!(
            "Topology-aware replicas (§IV-G): co-racked k=2 pairs over {servers} servers, {per_rack}/rack"
        ),
        vec!["algorithm", "co-racked", "topology-aware co-racked"],
    );
    let shared_fraction = |p: &dyn Placement| -> f64 {
        let mut shared = 0u64;
        for i in 0..n_files {
            let fid = FileId(mix64(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            let reps = p.replicas(fid, servers, 2);
            if reps[0] / per_rack == reps[1] / per_rack {
                shared += 1;
            }
        }
        shared as f64 / n_files as f64
    };
    let cases: Vec<TopologyCase> = vec![
        (
            "modulo",
            Box::new(ModuloPlacement),
            Box::new(TopologyAware::new(
                ModuloPlacement,
                Topology::regular(servers, per_rack),
            )),
        ),
        (
            "rendezvous",
            Box::new(RendezvousPlacement),
            Box::new(TopologyAware::new(
                RendezvousPlacement,
                Topology::regular(servers, per_rack),
            )),
        ),
        (
            "jump",
            Box::new(JumpPlacement),
            Box::new(TopologyAware::new(
                JumpPlacement,
                Topology::regular(servers, per_rack),
            )),
        ),
    ];
    for (name, base, aware) in &cases {
        t.push_row(vec![
            name.to_string(),
            fmt_pct(shared_fraction(base.as_ref())),
            fmt_pct(shared_fraction(aware.as_ref())),
        ]);
    }
    t
}

/// The §III-H reliability scenario: a node dies mid-training. Without
/// replication the run is damaged (lost accesses degrade to PFS re-fetches
/// every epoch); with k=2 the job completes with a bounded slowdown.
pub fn failure_table(quick: bool) -> Table {
    use crate::systems::paper_apps;
    use hvac_dl::{simulate_training, TrainingConfig};
    use hvac_sim::iostack::HvacBackend;
    use hvac_types::{ClusterConfig, GpfsConfig};

    let nodes = if quick { 16 } else { 128 };
    let app = &paper_apps()[0];
    let mut t = Table::new(
        "ablation_failure",
        format!(
            "Node failure mid-training (§III-H): kill one node after epoch 2 [ResNet50, nNodes={nodes}, Eps=6]"
        ),
        vec![
            "config",
            "total_min",
            "vs_healthy",
            "lost_accesses",
            "failover_reads",
        ],
    );
    let mut healthy_total = [0.0f64; 2];
    for (ki, k) in [1u32, 2].into_iter().enumerate() {
        for fail in [false, true] {
            let mut cfg = TrainingConfig::new(app.dataset.clone(), app.model.clone(), nodes)
                .batch_size(app.batch_size)
                .epochs(6);
            cfg.max_sim_iters = if quick { 2 } else { 4 };
            if fail {
                cfg.fail_node_after_epoch = Some((1, nodes / 2));
            }
            let mut cc = ClusterConfig::with_nodes(nodes);
            cc.gpfs = GpfsConfig::shared_alpine();
            cc.hvac.replication = k;
            let mut backend = HvacBackend::new(&cc, 0xFA11);
            let result = simulate_training(&mut backend, &cfg);
            let total = result.total_minutes();
            let vs = if fail {
                format!("{:+.1}%", (total / healthy_total[ki] - 1.0) * 100.0)
            } else {
                healthy_total[ki] = total;
                "—".into()
            };
            let stats = backend.stats();
            t.push_row(vec![
                format!("k={k}{}", if fail { " +node-failure" } else { "" }),
                crate::report::fmt_minutes(total),
                vs,
                stats.lost_accesses.to_string(),
                stats.failover_reads.to_string(),
            ]);
        }
    }
    t
}

/// Fig. 15 extension: byte balance at file vs segment granularity under a
/// heavy-tailed size distribution (the skew the paper blames for its CDF
/// deviation — segment-level caching, §III-E, fixes it).
pub fn segment_balance_table(quick: bool) -> Table {
    use hvac_dl::dataset::{DatasetSpec, SizeDistribution};
    let n_files: u64 = if quick { 8_000 } else { 200_000 };
    let servers = 512usize;
    let seg_size: u64 = 1 << 20; // 1 MiB segments
    let dataset = DatasetSpec {
        name: "skewed".into(),
        train_samples: n_files,
        mean_size: ByteSize::mib(4),
        size_dist: SizeDistribution::LogNormal { sigma: 1.4 },
        seed: 99,
    };
    let p = ModuloPlacement;
    let mut file_bytes = vec![0u64; servers];
    let mut seg_bytes = vec![0u64; servers];
    for i in 0..n_files {
        let size = dataset.size_of(i).bytes();
        let fid = FileId(mix64(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        file_bytes[p.home(fid, servers)] += size;
        let mut off = 0u64;
        let mut seg = 0u64;
        while off < size {
            let len = seg_size.min(size - off);
            let sfid = FileId(mix64(fid.0 ^ seg.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            seg_bytes[p.home(sfid, servers)] += len;
            off += len;
            seg += 1;
        }
    }
    let f = DistributionStats::from_counts(&file_bytes);
    let s = DistributionStats::from_counts(&seg_bytes);
    let fc = LoadCdf::from_counts(&file_bytes);
    let sc = LoadCdf::from_counts(&seg_bytes);
    let mut t = Table::new(
        "ablation_segments",
        format!(
            "Segment-level caching (§III-E): byte balance over {servers} servers, lognormal(σ=1.4) sizes, 1 MiB segments"
        ),
        vec!["granularity", "bytes_peak/mean", "bytes_cdf_dev", "jain"],
    );
    t.push_row(vec![
        "file".to_string(),
        format!("{:.4}", f.peak_to_mean),
        format!("{:.4}", fc.max_deviation),
        format!("{:.4}", f.jain_index),
    ]);
    t.push_row(vec![
        "segment(1MiB)".to_string(),
        format!("{:.4}", s.peak_to_mean),
        format!("{:.4}", sc.max_deviation),
        format!("{:.4}", s.jain_index),
    ]);
    t
}

/// Per-access latency tails for the three systems in a warm 256-node run.
pub fn latency_table(quick: bool) -> Table {
    use crate::systems::{paper_apps, SystemKind};
    use hvac_dl::{simulate_training, TrainingConfig};

    let nodes = if quick { 32 } else { 256 };
    let app = &paper_apps()[0];
    let mut t = Table::new(
        "ablation_latency",
        format!("Per-access latency distribution [ResNet50, nNodes={nodes}]"),
        vec!["system", "p50", "p99", "max", "mean"],
    );
    for system in SystemKind::all() {
        let mut cfg = TrainingConfig::new(app.dataset.clone(), app.model.clone(), nodes)
            .batch_size(app.batch_size)
            .epochs(3);
        cfg.max_sim_iters = 2;
        let mut backend = system.make_backend(nodes, 0x1A7);
        simulate_training(backend.as_mut(), &cfg);
        let h = backend
            .latency_histogram()
            .unwrap_or_else(|| panic!("sim backend {} records no latencies", system.label()));
        t.push_row(vec![
            system.label(),
            h.quantile(0.5).to_string(),
            h.quantile(0.99).to_string(),
            h.max().to_string(),
            h.mean().to_string(),
        ]);
    }
    t
}

/// Run all ablations.
pub fn run(quick: bool) -> Vec<Table> {
    vec![
        placement_table(quick),
        eviction_table(quick),
        prefetch_table(quick),
        topology_table(quick),
        segment_balance_table(quick),
        failure_table(quick),
        latency_table(quick),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn placement_elasticity_ordering() {
        let t = super::placement_table(true);
        let moved = |name: &str| -> f64 {
            let row = t.rows.iter().find(|r| r[0] == name).unwrap();
            row[4].trim_end_matches('%').parse::<f64>().unwrap()
        };
        // Modulo reshuffles nearly everything on growth; jump moves ~1/(n+1).
        assert!(moved("modulo") > 90.0, "modulo moved {}", moved("modulo"));
        assert!(moved("jump") < 5.0, "jump moved {}", moved("jump"));
        assert!(moved("rendezvous") < 5.0);
        assert!(moved("ring") < 10.0);
    }

    #[test]
    fn prefetch_makes_first_training_epoch_warm() {
        let t = super::prefetch_table(true);
        for row in &t.rows {
            let e1_cold: f64 = row[4].parse().unwrap();
            let e1_staged: f64 = row[5].parse().unwrap();
            assert!(
                e1_staged < e1_cold,
                "staged epoch-1 {e1_staged} must beat cold {e1_cold}"
            );
        }
    }

    #[test]
    fn topology_awareness_eliminates_co_racking() {
        let t = super::topology_table(true);
        for row in &t.rows {
            let aware: f64 = row[2].trim_end_matches('%').parse().unwrap();
            assert_eq!(aware, 0.0, "{}: aware co-rack {aware}%", row[0]);
        }
        let modulo_base: f64 = t.rows[0][1].trim_end_matches('%').parse().unwrap();
        assert!(
            modulo_base > 50.0,
            "modulo should co-rack heavily: {modulo_base}%"
        );
    }

    #[test]
    fn segment_granularity_improves_byte_balance() {
        let t = super::segment_balance_table(true);
        let file_dev: f64 = t.rows[0][2].parse().unwrap();
        let seg_dev: f64 = t.rows[1][2].parse().unwrap();
        assert!(
            seg_dev < file_dev,
            "segments should balance skewed bytes better: {seg_dev} vs {file_dev}"
        );
        let seg_peak: f64 = t.rows[1][1].parse().unwrap();
        let file_peak: f64 = t.rows[0][1].parse().unwrap();
        // At quick scale the sample is small; assert the relative win.
        assert!(
            seg_peak < file_peak * 0.7,
            "segment peak/mean {seg_peak} vs file {file_peak}"
        );
    }

    #[test]
    fn failure_table_shape() {
        let t = super::failure_table(true);
        assert_eq!(t.rows.len(), 4);
        // k=1 + failure loses accesses; k=2 + failure loses none but fails
        // over.
        let lost = |row: usize| -> u64 { t.rows[row][3].parse().unwrap() };
        let failovers = |row: usize| -> u64 { t.rows[row][4].parse().unwrap() };
        assert_eq!(lost(0), 0, "healthy k=1 loses nothing");
        assert!(lost(1) > 0, "k=1 + failure must lose accesses");
        assert_eq!(lost(3), 0, "k=2 + failure must lose nothing");
        assert!(failovers(3) > 0, "k=2 + failure must fail over");
    }

    #[test]
    fn latency_table_tails_ordered() {
        let t = super::latency_table(true);
        assert_eq!(t.rows.len(), 5);
        // Every row parses and p99 >= p50 is guaranteed by the histogram;
        // check XFS p50 is the lowest of the three systems.
        assert_eq!(t.rows[4][0], "XFS-on-NVMe");
    }

    #[test]
    fn eviction_policies_all_produce_hits_under_pressure() {
        let t = super::eviction_table(true);
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            let hit: f64 = row[1].trim_end_matches('%').parse().unwrap();
            let evictions: u64 = row[2].parse().unwrap();
            assert!(hit > 1.0 && hit < 60.0, "{}: hit {hit}", row[0]);
            if row[0] == "MinIo" {
                // The pinned cache never evicts; overflow bypasses to PFS.
                assert_eq!(evictions, 0, "MinIO must not evict");
                let bypass: u64 = row[4].parse().unwrap();
                assert!(bypass > 0, "MinIO overflow must bypass");
            } else {
                assert!(evictions > 0, "{}: no evictions", row[0]);
            }
        }
    }
}
