//! Fig. 9 — (a) HVAC training-time improvement normalized to GPFS and
//! (b) overhead normalized to XFS-on-NVMe, derived from the Fig. 8 sweep.
//!
//! Paper targets: 7–25 % improvement up to 256 nodes and >50 % at 512/1,024
//! (Fig. 9a); overhead vs XFS ordered HVAC(1×1) ≈ 25 % > (2×1) ≈ 14 % >
//! (4×1) ≈ 9 % (Fig. 9b).

use crate::figures::fig8::SweepPoint;
use crate::report::{fmt_pct, Table};
use crate::systems::SystemKind;

fn minutes(points: &[SweepPoint], app: &str, nodes: u32, system: SystemKind) -> f64 {
    points
        .iter()
        .find(|p| p.app == app && p.nodes == nodes && p.system == system)
        .unwrap_or_else(|| panic!("sweep has no point for {app} @ {nodes} nodes ({system:?})"))
        .result
        .total_minutes()
}

fn apps_of(points: &[SweepPoint]) -> Vec<String> {
    let mut out = Vec::new();
    for p in points {
        if !out.contains(&p.app) {
            out.push(p.app.clone());
        }
    }
    out
}

fn nodes_of(points: &[SweepPoint]) -> Vec<u32> {
    let mut out: Vec<u32> = points.iter().map(|p| p.nodes).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Mean over apps of `1 - hvac/gpfs` for each (variant, node count).
pub fn improvement_vs_gpfs(points: &[SweepPoint], variant: u32, nodes: u32) -> f64 {
    let apps = apps_of(points);
    let mut acc = 0.0;
    for app in &apps {
        let gpfs = minutes(points, app, nodes, SystemKind::Gpfs);
        let hvac = minutes(points, app, nodes, SystemKind::Hvac(variant));
        acc += 1.0 - hvac / gpfs;
    }
    acc / apps.len() as f64
}

/// Mean over apps of `hvac/xfs - 1` for each (variant, node count).
pub fn overhead_vs_xfs(points: &[SweepPoint], variant: u32, nodes: u32) -> f64 {
    let apps = apps_of(points);
    let mut acc = 0.0;
    for app in &apps {
        let xfs = minutes(points, app, nodes, SystemKind::Xfs);
        let hvac = minutes(points, app, nodes, SystemKind::Hvac(variant));
        acc += hvac / xfs - 1.0;
    }
    acc / apps.len() as f64
}

/// Render Fig. 9 (a) and (b) from the Fig. 8 sweep.
pub fn tables(points: &[SweepPoint]) -> Vec<Table> {
    let nodes_list = nodes_of(points);
    let variants = [1u32, 2, 4];

    let mut a = Table::new(
        "fig9a",
        "Training-time improvement over GPFS (mean of 4 apps)",
        vec!["nodes", "HVAC(1x1)", "HVAC(2x1)", "HVAC(4x1)"],
    );
    for &nodes in &nodes_list {
        let mut row = vec![nodes.to_string()];
        for &v in &variants {
            row.push(fmt_pct(improvement_vs_gpfs(points, v, nodes)));
        }
        a.push_row(row);
    }

    let mut b = Table::new(
        "fig9b",
        "Training-time overhead vs XFS-on-NVMe (mean of 4 apps)",
        vec!["nodes", "HVAC(1x1)", "HVAC(2x1)", "HVAC(4x1)"],
    );
    let mut avg = [0.0f64; 3];
    for &nodes in &nodes_list {
        let mut row = vec![nodes.to_string()];
        for (i, &v) in variants.iter().enumerate() {
            let o = overhead_vs_xfs(points, v, nodes);
            avg[i] += o / nodes_list.len() as f64;
            row.push(fmt_pct(o));
        }
        b.push_row(row);
    }
    b.push_row(vec![
        "mean".to_string(),
        fmt_pct(avg[0]),
        fmt_pct(avg[1]),
        fmt_pct(avg[2]),
    ]);

    vec![a, b]
}

/// Run Fig. 8's sweep and derive Fig. 9.
pub fn run(quick: bool) -> Vec<Table> {
    tables(&crate::figures::fig8::sweep(quick))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig8;

    #[test]
    fn overhead_ordering_matches_paper() {
        let points = fig8::sweep(true);
        for nodes in fig8::node_scales(true) {
            let o1 = overhead_vs_xfs(&points, 1, nodes);
            let o2 = overhead_vs_xfs(&points, 2, nodes);
            let o4 = overhead_vs_xfs(&points, 4, nodes);
            // Quick scales are compute-bound; the variant ordering holds up
            // to ~2 % placement noise (the full sweep shows it cleanly).
            assert!(
                o1 >= o2 - 0.02 && o2 >= o4 - 0.02,
                "{nodes}: {o1} {o2} {o4}"
            );
            assert!(o4 >= -0.02, "HVAC cannot beat the upper bound: {o4}");
        }
    }

    #[test]
    fn improvement_is_nonnegative_at_quick_scales() {
        let points = fig8::sweep(true);
        for nodes in fig8::node_scales(true) {
            for v in [1, 2, 4] {
                let g = improvement_vs_gpfs(&points, v, nodes);
                assert!(g > -0.05, "variant {v}@{nodes} regressed vs GPFS: {g}");
            }
        }
    }

    #[test]
    fn tables_have_all_rows() {
        let points = fig8::sweep(true);
        let tables = tables(&points);
        assert_eq!(tables[0].rows.len(), fig8::node_scales(true).len());
        assert_eq!(tables[1].rows.len(), fig8::node_scales(true).len() + 1); // + mean
    }
}
