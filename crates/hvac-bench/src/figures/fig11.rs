//! Fig. 11 — per-epoch analysis at 512 nodes [BS=4, Eps=10]: the first
//! training epoch, the best non-first ("random") epoch, and the average
//! epoch, for every system.
//!
//! Expected shape: HVAC's epoch-1 ≈ GPFS's epoch (every server still
//! touches the PFS once per file), while its cached epochs approach XFS —
//! the paper reports ~3× per-epoch gain for HVAC(4×1) over GPFS once the
//! dataset is resident.

use crate::report::{fmt_minutes, Table};
use crate::systems::{paper_apps, SystemKind};
use hvac_dl::{simulate_training, TrainingConfig};

/// Run the per-epoch breakdown.
pub fn run(quick: bool) -> Vec<Table> {
    let nodes = if quick { 32 } else { 512 };
    let app = &paper_apps()[0]; // ResNet50 on ImageNet-21K
    let mut cfg = TrainingConfig::new(app.dataset.clone(), app.model.clone(), nodes)
        .batch_size(4)
        .epochs(10);
    cfg.max_sim_iters = if quick { 2 } else { 6 };
    cfg.distinct_warm_epochs = 3;

    let mut t = Table::new(
        "fig11",
        format!("Per-epoch training time (minutes) [BS=4, Eps=10, nNodes={nodes}]"),
        vec!["system", "epoch_1", "R_epoch", "avg_epoch"],
    );
    for system in SystemKind::all() {
        let mut backend = system.make_backend(nodes, 0xF11);
        let r = simulate_training(backend.as_mut(), &cfg);
        t.push_row(vec![
            system.label(),
            fmt_minutes(r.first_epoch().as_minutes_f64()),
            fmt_minutes(r.best_random_epoch().as_minutes_f64()),
            fmt_minutes(r.avg_epoch().as_minutes_f64()),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(t: &Table, system: &str, col: usize) -> f64 {
        t.rows
            .iter()
            .find(|r| r[0] == system)
            .unwrap_or_else(|| panic!("missing {system}"))[col]
            .parse()
            .unwrap()
    }

    #[test]
    fn epoch1_vs_cached_epoch_shapes() {
        let t = &run(true)[0];
        // Epoch 1: HVAC is not faster than GPFS (both hit the PFS).
        let gpfs_e1 = cell(t, "GPFS", 1);
        for v in ["HVAC(1x1)", "HVAC(2x1)", "HVAC(4x1)"] {
            assert!(cell(t, v, 1) >= gpfs_e1 * 0.9, "{v} epoch-1 too fast");
        }
        // Cached epoch: HVAC at or below GPFS; XFS lower-bounds everyone.
        let gpfs_r = cell(t, "GPFS", 2);
        let xfs_r = cell(t, "XFS-on-NVMe", 2);
        for v in ["HVAC(1x1)", "HVAC(2x1)", "HVAC(4x1)"] {
            let r = cell(t, v, 2);
            assert!(r <= gpfs_r * 1.001, "{v} cached epoch {r} vs GPFS {gpfs_r}");
            assert!(r >= xfs_r * 0.999, "{v} cached epoch {r} below XFS {xfs_r}");
        }
        // avg epoch sits between R_epoch and epoch_1 for HVAC.
        let avg = cell(t, "HVAC(4x1)", 3);
        assert!(avg >= cell(t, "HVAC(4x1)", 2) * 0.999);
        assert!(avg <= cell(t, "HVAC(4x1)", 1) * 1.001);
    }
}
