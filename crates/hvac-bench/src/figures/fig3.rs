//! Fig. 3 — MDTest: 32 KiB random `<open-read-close>` transactions per
//! second, GPFS vs XFS-on-NVMe, as the node count scales.
//!
//! Expected shape: GPFS saturates at the MDS pool's aggregate op rate while
//! XFS scales linearly with nodes, opening the gap that motivates HVAC.

use crate::report::Table;
use hvac_sim::gpfs::GpfsModel;
use hvac_sim::iostack::{GpfsBackend, XfsLocalBackend};
use hvac_sim::mdtest::{run_mdtest, MdtestConfig};
use hvac_types::ByteSize;

/// Node counts swept (the paper goes to 4,096).
pub fn node_scales(quick: bool) -> Vec<u32> {
    if quick {
        vec![8, 512, 4096]
    } else {
        vec![2, 8, 32, 128, 512, 1024, 2048, 4096]
    }
}

pub(crate) fn mdtest_table(id: &str, title: &str, size: ByteSize, quick: bool) -> Table {
    let mut t = Table::new(id, title, vec!["nodes", "GPFS_tps", "XFS_tps", "XFS/GPFS"]);
    for nodes in node_scales(quick) {
        let cfg = MdtestConfig {
            nodes,
            procs_per_node: 2,
            txns_per_proc: if quick { 16 } else { 64 },
            file_size: size,
        };
        let mut gpfs_model = GpfsModel::summit();
        gpfs_model.set_client_count(nodes * cfg.procs_per_node);
        let gpfs = run_mdtest(GpfsBackend::new(gpfs_model), cfg.clone());
        let xfs = run_mdtest(XfsLocalBackend::summit(nodes), cfg);
        t.push_row(vec![
            nodes.to_string(),
            format!("{:.0}", gpfs.tps),
            format!("{:.0}", xfs.tps),
            format!("{:.1}x", xfs.tps / gpfs.tps),
        ]);
    }
    t
}

/// Run the Fig. 3 sweep.
pub fn run(quick: bool) -> Vec<Table> {
    vec![mdtest_table(
        "fig3",
        "MDTest 32 KiB open-read-close transactions/s (GPFS vs XFS-on-NVMe)",
        ByteSize::kib(32),
        quick,
    )]
}

#[cfg(test)]
mod tests {
    #[test]
    fn gpfs_saturates_and_xfs_scales() {
        let t = &super::run(true)[0];
        let tps = |row: usize, col: usize| -> f64 { t.rows[row][col].parse().unwrap() };
        // XFS grows ~linearly 8 -> 4096 nodes (512x).
        let xfs_growth = tps(2, 2) / tps(0, 2);
        assert!(xfs_growth > 300.0, "xfs growth {xfs_growth}");
        // GPFS saturates at the MDS pool's capacity long before 4096 nodes.
        let gpfs_growth = tps(2, 1) / tps(0, 1);
        assert!(
            gpfs_growth < xfs_growth / 2.0,
            "gpfs {gpfs_growth} vs xfs {xfs_growth}"
        );
        // XFS dwarfs GPFS at 4096 nodes.
        assert!(tps(2, 2) > tps(2, 1) * 5.0);
    }
}
