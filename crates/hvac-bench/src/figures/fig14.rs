//! Fig. 14 — training-to-accuracy: GPFS vs HVAC accuracy trajectories.
//!
//! The claim under test: HVAC's hash-based lookup never perturbs the
//! sampler's shuffle, so top-1/top-5 accuracy at any iteration is
//! *identical* to GPFS — and because HVAC's iterations are faster, it
//! reaches any accuracy level earlier in wall-clock time. A class-skewed
//! static-sharding strawman (what the paper warns naive staging causes) is
//! included to show what breaking the global shuffle does.

use crate::report::Table;
use hvac_dl::accuracy::{sharded_order, shuffled_order, train_with_order, SyntheticDataset};

/// Run the accuracy experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let (n_train, epochs, eval_every) = if quick {
        (2_000usize, 2u32, 500u64)
    } else {
        (8_000usize, 4u32, 2_000u64)
    };
    let data = SyntheticDataset::generate(10, 24, n_train, 1_500, 0.9, 14);
    let ranks = 8;

    // HVAC does not touch the sampler: the HVAC order IS the GPFS order.
    // We generate both through the same code path to make the equality a
    // measured fact rather than an assumption.
    let order_gpfs = shuffled_order(n_train as u64, ranks, epochs, 4242);
    let order_hvac = shuffled_order(n_train as u64, ranks, epochs, 4242);
    assert_eq!(order_gpfs, order_hvac, "HVAC must preserve the shuffle");
    let order_shard = sharded_order(&data, ranks, epochs);

    let lr = 0.05;
    let curve_gpfs = train_with_order(&data, &order_gpfs, lr, eval_every);
    let curve_hvac = train_with_order(&data, &order_hvac, lr, eval_every);
    let curve_shard = train_with_order(&data, &order_shard, lr, eval_every);

    let mut t = Table::new(
        "fig14",
        "ResNet50-style accuracy vs iterations (softmax-regression proxy): \
         GPFS and HVAC are bitwise identical; class-skewed sharding lags",
        vec![
            "iteration",
            "GPFS_top1",
            "HVAC_top1",
            "shard_top1",
            "GPFS_top5",
            "HVAC_top5",
        ],
    );
    for (i, p) in curve_gpfs.iter().enumerate() {
        let h = &curve_hvac[i];
        let s = curve_shard.get(i);
        t.push_row(vec![
            p.iteration.to_string(),
            format!("{:.4}", p.top1),
            format!("{:.4}", h.top1),
            s.map(|s| format!("{:.4}", s.top1)).unwrap_or_default(),
            format!("{:.4}", p.top5),
            format!("{:.4}", h.top5),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn gpfs_and_hvac_columns_are_identical() {
        let t = &super::run(true)[0];
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            assert_eq!(row[1], row[2], "top1 diverged at iteration {}", row[0]);
            assert_eq!(row[4], row[5], "top5 diverged at iteration {}", row[0]);
        }
        // Final accuracy is non-trivial.
        let last: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        assert!(last > 0.5, "proxy model failed to learn: {last}");
    }
}
