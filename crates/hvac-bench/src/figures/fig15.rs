//! Fig. 15 — per-server file distribution vs the ideal CDF as the node
//! count scales, for the ImageNet-21K listing under HVAC's hash placement.
//!
//! Expected shape: near-ideal balance everywhere (the reason modulo hashing
//! suffices), with the visible deviation attributable to the skewed file
//! *sizes*, not the hash (the paper blames "random sizes of file in the
//! datasets" for the wiggle below 128 nodes).

use crate::report::Table;
use hvac_dl::DatasetSpec;
use hvac_hash::pathhash::mix64;
use hvac_hash::placement::{ModuloPlacement, Placement};
use hvac_hash::stats::{DistributionStats, LoadCdf};
use hvac_types::FileId;

/// Node counts swept.
pub fn node_scales(quick: bool) -> Vec<u32> {
    if quick {
        vec![16, 64]
    } else {
        vec![16, 64, 128, 256, 512, 1024]
    }
}

/// Run the load-distribution analysis (files and bytes per server).
pub fn run(quick: bool) -> Vec<Table> {
    let dataset = DatasetSpec::imagenet21k();
    let n_files: u64 = if quick { 200_000 } else { 2_000_000 };
    let placement = ModuloPlacement;

    let mut t = Table::new(
        "fig15",
        format!(
            "Per-server load distribution of {} ({n_files} files sampled), modulo placement",
            dataset.name
        ),
        vec![
            "nodes",
            "files_min",
            "files_max",
            "files_peak/mean",
            "files_cdf_dev",
            "bytes_peak/mean",
            "bytes_cdf_dev",
            "jain_bytes",
        ],
    );
    for nodes in node_scales(quick) {
        let servers = nodes as usize; // HVAC(1x1)
        let mut file_counts = vec![0u64; servers];
        let mut byte_loads = vec![0u64; servers];
        for i in 0..n_files {
            let fid = FileId(mix64(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            let home = placement.home(fid, servers);
            file_counts[home] += 1;
            byte_loads[home] += dataset.size_of(i).bytes();
        }
        let fstats = DistributionStats::from_counts(&file_counts);
        let fcdf = LoadCdf::from_counts(&file_counts);
        let bstats = DistributionStats::from_counts(&byte_loads);
        let bcdf = LoadCdf::from_counts(&byte_loads);
        t.push_row(vec![
            nodes.to_string(),
            format!("{:.0}", fstats.min),
            format!("{:.0}", fstats.max),
            format!("{:.4}", fstats.peak_to_mean),
            format!("{:.4}", fcdf.max_deviation),
            format!("{:.4}", bstats.peak_to_mean),
            format!("{:.4}", bcdf.max_deviation),
            format!("{:.4}", bstats.jain_index),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn distribution_is_near_ideal() {
        let t = &super::run(true)[0];
        for row in &t.rows {
            let file_dev: f64 = row[4].parse().unwrap();
            let byte_dev: f64 = row[6].parse().unwrap();
            let jain: f64 = row[7].parse().unwrap();
            assert!(file_dev < 0.02, "file CDF deviation too large: {file_dev}");
            assert!(byte_dev < 0.05, "byte CDF deviation too large: {byte_dev}");
            assert!(jain > 0.99, "jain index {jain}");
            // Size skew makes byte balance worse than file balance.
            assert!(byte_dev >= file_dev * 0.5);
        }
    }
}
