//! The systems and applications under test, exactly as §IV-A defines them.

use hvac_dl::{DatasetSpec, DnnModel};
use hvac_sim::gpfs::GpfsModel;
use hvac_sim::iostack::{GpfsBackend, HvacBackend, IoBackend, XfsLocalBackend};
use hvac_types::{ClusterConfig, GpfsConfig};

/// A system column of the paper's plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// The shared parallel file system baseline.
    Gpfs,
    /// HVAC with `i` server instances per node — HVAC (i×1).
    Hvac(u32),
    /// The staged node-local upper bound.
    Xfs,
}

impl SystemKind {
    /// The five columns of Fig. 8.
    pub fn all() -> Vec<SystemKind> {
        vec![
            SystemKind::Gpfs,
            SystemKind::Hvac(1),
            SystemKind::Hvac(2),
            SystemKind::Hvac(4),
            SystemKind::Xfs,
        ]
    }

    /// Display label matching the paper's legends.
    pub fn label(&self) -> String {
        match self {
            SystemKind::Gpfs => "GPFS".into(),
            SystemKind::Hvac(i) => format!("HVAC({i}x1)"),
            SystemKind::Xfs => "XFS-on-NVMe".into(),
        }
    }

    /// Instantiate the simulator backend for a job of `nodes` nodes.
    pub fn make_backend(&self, nodes: u32, seed: u64) -> Box<dyn IoBackend> {
        match self {
            SystemKind::Gpfs => Box::new(GpfsBackend::new(GpfsModel::new(
                GpfsConfig::shared_alpine(),
            ))),
            SystemKind::Hvac(instances) => {
                let mut cfg = ClusterConfig::with_nodes(nodes);
                cfg.hvac.instances_per_node = *instances;
                cfg.gpfs = GpfsConfig::shared_alpine();
                Box::new(HvacBackend::new(&cfg, seed))
            }
            SystemKind::Xfs => Box::new(XfsLocalBackend::summit(nodes)),
        }
    }
}

/// One of the four DL applications of §IV-A2.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Network model.
    pub model: DnnModel,
    /// Dataset.
    pub dataset: DatasetSpec,
    /// Per-rank batch size used in the Fig. 8 sweep (the paper's captions
    /// list BS per app; values chosen to match each app's published configs).
    pub batch_size: u32,
}

impl AppSpec {
    /// Application name.
    pub fn name(&self) -> &str {
        &self.model.name
    }
}

/// The four (application, dataset) pairs of the evaluation:
/// ResNet50 and TResNet_M on ImageNet-21K, CosmoFlow on cosmoUniverse,
/// DeepCAM on the climate tiles.
pub fn paper_apps() -> Vec<AppSpec> {
    vec![
        AppSpec {
            model: DnnModel::resnet50(),
            dataset: DatasetSpec::imagenet21k(),
            batch_size: 32,
        },
        AppSpec {
            model: DnnModel::tresnet_m(),
            dataset: DatasetSpec::imagenet21k(),
            batch_size: 32,
        },
        AppSpec {
            model: DnnModel::cosmoflow(),
            dataset: DatasetSpec::cosmouniverse(),
            batch_size: 8,
        },
        AppSpec {
            model: DnnModel::deepcam(),
            dataset: DatasetSpec::deepcam(),
            batch_size: 2,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_systems_with_paper_labels() {
        let labels: Vec<String> = SystemKind::all().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["GPFS", "HVAC(1x1)", "HVAC(2x1)", "HVAC(4x1)", "XFS-on-NVMe"]
        );
    }

    #[test]
    fn backends_instantiate_and_label_consistently() {
        for sys in SystemKind::all() {
            let backend = sys.make_backend(4, 1);
            assert_eq!(backend.label(), sys.label());
        }
    }

    #[test]
    fn four_apps_match_paper() {
        let apps = paper_apps();
        assert_eq!(apps.len(), 4);
        assert_eq!(apps[0].name(), "ResNet50");
        assert_eq!(apps[2].dataset.name, "cosmoUniverse");
        assert_eq!(apps[3].batch_size, 2);
    }
}
