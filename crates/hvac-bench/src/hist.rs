//! Latency recording for the hot-path harness.
//!
//! [`LatencyHist`] collects per-operation durations and reports the
//! percentiles the paper's latency plots use (p50 / p99 / p999). Samples are
//! kept raw (nanoseconds) and sorted once at query time — the harness records
//! a few hundred thousand reads at most, so exact order statistics are
//! cheaper and more honest than a bucketed approximation.

use std::time::Duration;

/// Exact-sample latency histogram.
#[derive(Debug, Default, Clone)]
pub struct LatencyHist {
    /// Recorded latencies in nanoseconds, unsorted until a percentile query.
    samples: Vec<u64>,
}

/// The percentile triple every harness row reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median latency in nanoseconds.
    pub p50: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99: u64,
    /// 99.9th-percentile latency in nanoseconds.
    pub p999: u64,
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.samples.push(nanos);
    }

    /// Absorbs every sample from `other` (used to merge per-thread
    /// histograms after a reader fan-out joins).
    pub fn merge(&mut self, other: &LatencyHist) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (0.0 ..= 1.0) in nanoseconds via the
    /// nearest-rank method; `None` when no samples were recorded.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: ceil(q * n), 1-based; q = 0 maps to the minimum.
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(sorted[rank - 1])
    }

    /// p50 / p99 / p999 in one pass; `None` when empty.
    pub fn percentiles(&self) -> Option<Percentiles> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let pick = |q: f64| {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            sorted[rank - 1]
        };
        Some(Percentiles {
            p50: pick(0.50),
            p99: pick(0.99),
            p999: pick(0.999),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(nanos: &[u64]) -> LatencyHist {
        let mut h = LatencyHist::new();
        for &n in nanos {
            h.record(Duration::from_nanos(n));
        }
        h
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHist::new();
        assert!(h.is_empty());
        assert_eq!(h.percentiles(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let h = hist_of(&[42]);
        let p = h.percentiles().expect("one sample");
        assert_eq!((p.p50, p.p99, p.p999), (42, 42, 42));
    }

    #[test]
    fn nearest_rank_on_a_known_distribution() {
        // 1..=1000: p50 = 500, p99 = 990, p999 = 999.
        let samples: Vec<u64> = (1..=1000).collect();
        let h = hist_of(&samples);
        let p = h.percentiles().expect("samples");
        assert_eq!((p.p50, p.p99, p.p999), (500, 990, 999));
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(1000));
    }

    #[test]
    fn percentiles_are_order_independent() {
        let mut shuffled = vec![9, 1, 5, 3, 7, 2, 8, 4, 6, 10];
        let sorted: Vec<u64> = {
            let mut s = shuffled.clone();
            s.sort_unstable();
            s
        };
        shuffled.reverse();
        assert_eq!(
            hist_of(&shuffled).percentiles(),
            hist_of(&sorted).percentiles()
        );
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = hist_of(&[1, 2, 3]);
        let b = hist_of(&[4, 5]);
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.quantile(1.0), Some(5));
    }
}
