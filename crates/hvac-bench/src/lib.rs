//! The experiment harness: regenerates every table and figure of the HVAC
//! paper (CLUSTER 2022).
//!
//! Each module under [`figures`] produces one or more [`report::Table`]s —
//! the same rows/series the paper plots. The `reproduce` binary prints them
//! and writes CSVs under `results/`. Absolute numbers come from the
//! simulator calibrated in `hvac_types::summit` (this is a model of Summit,
//! not Summit); the *shapes* — who wins, by what factor, where GPFS
//! saturates — are the reproduction targets, recorded in `EXPERIMENTS.md`.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`figures::table1`] | Table I — Summit node specification |
//! | [`figures::fig3`]   | Fig. 3 — MDTest 32 KiB transactions/s |
//! | [`figures::fig4`]   | Fig. 4 — MDTest 8 MiB transactions/s |
//! | [`figures::fig8`]   | Fig. 8 — training time vs. nodes, 4 applications |
//! | [`figures::fig9`]   | Fig. 9 — normalized gain vs GPFS / overhead vs XFS |
//! | [`figures::fig10`]  | Fig. 10 — training time vs. epochs |
//! | [`figures::fig11`]  | Fig. 11 — epoch-1 / best / average epoch |
//! | [`figures::fig12`]  | Fig. 12 — batch-size sweep |
//! | [`figures::fig13`]  | Fig. 13 — local/remote cache split |
//! | [`figures::fig14`]  | Fig. 14 — accuracy vs. iterations |
//! | [`figures::fig15`]  | Fig. 15 — per-server load distribution |
//! | [`figures::ablation`] | extra: placement & eviction ablations |

pub mod figures;
pub mod hist;
pub mod report;
pub mod systems;

pub use report::Table;
pub use systems::{paper_apps, AppSpec, SystemKind};
