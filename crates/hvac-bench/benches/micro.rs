//! Micro-benchmarks of HVAC's hot paths: placement (runs on every `open`),
//! the wire codec, the RPC round-trip, cache insert/read, eviction churn,
//! and the sampler permutation (every sample access in the simulator).

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hvac_core::cache::CacheManager;
use hvac_core::eviction::make_policy;
use hvac_core::protocol::{Request, Response};
use hvac_core::server::{HvacServer, HvacServerOptions};
use hvac_hash::pathhash::{hash_bytes, hash_path};
use hvac_hash::placement::{
    JumpPlacement, ModuloPlacement, Placement, RendezvousPlacement, RingPlacement, Straw2Placement,
};
use hvac_net::fabric::Fabric;
use hvac_pfs::MemStore;
use hvac_storage::LocalStore;
use hvac_types::{ByteSize, EvictionPolicyKind, FileId};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn bench_path_hashing(c: &mut Criterion) {
    let path = "/gpfs/alpine/proj/imagenet21k/train/n01440764/sample_00421337.JPEG";
    c.bench_function("pathhash/typical_dataset_path", |b| {
        b.iter(|| hash_path(black_box(path)))
    });
    let long = "x".repeat(4096);
    c.bench_function("pathhash/4k_bytes", |b| {
        b.iter(|| hash_bytes(black_box(long.as_bytes())))
    });
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement/home_of_2048_servers");
    let n_servers = 2048usize;
    let algorithms: Vec<(&str, Box<dyn Placement>)> = vec![
        ("modulo", Box::new(ModuloPlacement)),
        ("jump", Box::new(JumpPlacement)),
        ("rendezvous", Box::new(RendezvousPlacement)),
        ("ring", Box::new(RingPlacement::default())),
        ("straw2", Box::new(Straw2Placement::new())),
    ];
    for (name, p) in &algorithms {
        // Warm the ring cache outside the measurement.
        p.home(FileId(1), n_servers);
        group.bench_function(*name, |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(0x9e37_79b9);
                black_box(p.home(FileId(i), n_servers))
            })
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let req = Request::Read {
        path: PathBuf::from("/gpfs/train/sample_00001234.bin"),
        offset: 4096,
        len: 163_840,
    };
    c.bench_function("protocol/encode_read_request", |b| {
        b.iter(|| black_box(&req).encode().unwrap())
    });
    let encoded = req.encode().unwrap();
    c.bench_function("protocol/decode_read_request", |b| {
        b.iter(|| Request::decode(black_box(encoded.clone())).unwrap())
    });
    let resp = Response::Data {
        total_size: 163_840,
        cache_hit: true,
    };
    c.bench_function("protocol/response_round_trip", |b| {
        b.iter(|| Response::decode(black_box(&resp).encode()).unwrap())
    });
}

fn bench_rpc_round_trip(c: &mut Criterion) {
    let fabric = Arc::new(Fabric::new());
    let pfs = Arc::new(MemStore::new());
    pfs.put("/gpfs/train/f.bin", Bytes::from(vec![7u8; 163_840]));
    let cache = Arc::new(CacheManager::new(
        LocalStore::in_memory(ByteSize::mib(64)),
        make_policy(EvictionPolicyKind::Random, 1),
    ));
    let server = HvacServer::new(cache, pfs, HvacServerOptions::default(), "bench").unwrap();
    let _ep = server.serve(&fabric, "bench/srv0").unwrap();
    // Warm the cache so the bench measures the hit path.
    let warm = Request::Read {
        path: PathBuf::from("/gpfs/train/f.bin"),
        offset: 0,
        len: 163_840,
    }
    .encode()
    .unwrap();
    fabric.call("bench/srv0", warm.clone()).unwrap();

    c.bench_function("rpc/cached_163KB_read_round_trip", |b| {
        b.iter(|| fabric.call("bench/srv0", warm.clone()).unwrap())
    });
}

fn bench_cache_ops(c: &mut Criterion) {
    let mgr = CacheManager::new(
        LocalStore::in_memory(ByteSize::gib(1)),
        make_policy(EvictionPolicyKind::Random, 1),
    );
    let data = Bytes::from(vec![1u8; 163_840]);
    for i in 0..1024u64 {
        mgr.insert(Path::new(&format!("/warm/{i}")), data.clone())
            .unwrap();
    }
    c.bench_function("cache/read_163KB_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(mgr.read_all(Path::new(&format!("/warm/{i}"))).unwrap())
        })
    });
}

fn bench_eviction_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("eviction/churn_insert_with_full_cache");
    for kind in [
        EvictionPolicyKind::Random,
        EvictionPolicyKind::Fifo,
        EvictionPolicyKind::Lru,
        EvictionPolicyKind::Lfu,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                let mgr = CacheManager::new(
                    LocalStore::in_memory(ByteSize(1_000 * 1_000)),
                    make_policy(kind, 7),
                );
                let data = Bytes::from(vec![1u8; 1_000]);
                let mut i = 0u64;
                // Pre-fill to capacity so every insert evicts.
                for j in 0..1_000u64 {
                    mgr.insert(Path::new(&format!("/f/{j}")), data.clone())
                        .unwrap();
                }
                b.iter(|| {
                    i += 1;
                    mgr.insert(Path::new(&format!("/f/{}", 1_000 + i)), data.clone())
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_sampler(c: &mut Criterion) {
    use hvac_dl::Permutation;
    let perm = Permutation::new(11_797_632, 42);
    c.bench_function("sampler/permutation_apply_imagenet21k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 11_797_632;
            black_box(perm.apply(i))
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(30);
    targets = bench_path_hashing,
    bench_placement,
    bench_codec,
    bench_rpc_round_trip,
    bench_cache_ops,
    bench_eviction_churn,
    bench_sampler
);
criterion_main!(micro);
