//! Rebalancing payoff benchmark: warm hit-rate trajectory across a
//! membership join and leave, with the online rebalancer on vs off.
//!
//! Two otherwise-identical clusters serve the same dataset. After a warm-up
//! epoch, each goes through the same churn script — a node **joins**, then
//! a different node **leaves** — and the warm hit rate (server cache hits
//! per read, measured over one full epoch pass) is sampled after every
//! step. With rebalancing, the migrated minority of files is already
//! resident at its new home when the next pass starts, so the hit rate
//! recovers to >= 90 % of its pre-churn value within one epoch. Without it,
//! every re-homed file is a cold miss against the PFS in the pass after
//! each view change — the baseline never clears the bar inside the churn
//! window.
//!
//! Run with `cargo bench -p hvac-bench --bench bench_rebalance`; emits
//! `results/BENCH_rebalance.json` at the repo root.

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_pfs::MemStore;
use hvac_types::{NodeId, PlacementKind};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const NODES: u32 = 4;
const N_FILES: u64 = 128;
const FILE_SIZE: usize = 4096;
const RECOVERY_BAR: f64 = 0.9;

fn sample(i: u64) -> PathBuf {
    PathBuf::from(format!("/gpfs/bench/sample_{i:08}.bin"))
}

fn build_cluster(rebalance: bool) -> Cluster {
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/bench"), N_FILES, |_| FILE_SIZE);
    Cluster::new(
        pfs,
        ClusterOptions::new(NODES, 1)
            .dataset_dir("/gpfs/bench")
            .clients_per_node(1)
            .placement(PlacementKind::Ring)
            .rebalance(rebalance),
    )
    .expect("cluster options are valid")
}

/// One full epoch pass: a single rank reads every file exactly once;
/// returns the warm hit rate (cache hits per read) over exactly this pass,
/// from the deltas of the allocation-wide counters. Reading each file once
/// keeps the rate honest — with multiple ranks, the first miss re-faults
/// the file in and every later rank hits, hiding the churn cost.
fn epoch_pass_hit_rate(cluster: &Cluster) -> f64 {
    let before = cluster.aggregate_metrics();
    let client = cluster.client(0);
    for i in 0..N_FILES {
        let data = client.read_file(&sample(i)).expect("read must succeed");
        assert_eq!(data.len(), FILE_SIZE);
    }
    let after = cluster.aggregate_metrics();
    let reads = (after.reads - before.reads) as f64;
    let hits = (after.cache_hits - before.cache_hits) as f64;
    hits / reads
}

/// Drive one cluster through warm-up, join, and leave; returns the hit
/// rates [pre_churn, post_join, post_leave, recovery].
fn trajectory(cluster: &mut Cluster) -> [f64; 4] {
    // Epoch 0: cold pass to populate, then the pre-churn warm sample.
    epoch_pass_hit_rate(cluster);
    let pre_churn = epoch_pass_hit_rate(cluster);

    cluster.add_node().expect("join");
    cluster.wait_rebalance(); // None when the rebalancer is disabled
    let post_join = epoch_pass_hit_rate(cluster);

    cluster.remove_node(NodeId(1)).expect("leave");
    cluster.wait_rebalance();
    let post_leave = epoch_pass_hit_rate(cluster);

    // One more epoch: by now even the baseline has re-faulted everything
    // in at its new home, so both converge back to warm.
    let recovery = epoch_pass_hit_rate(cluster);
    [pre_churn, post_join, post_leave, recovery]
}

fn main() {
    println!(
        "rebalance bench: {N_FILES} files x {FILE_SIZE} B on {NODES} nodes \
         (Ring placement, one measuring rank); join then leave"
    );

    let mut with_reb = build_cluster(true);
    let mut baseline = build_cluster(false);
    let reb = trajectory(&mut with_reb);
    let base = trajectory(&mut baseline);
    with_reb.shutdown();
    baseline.shutdown();

    let phases = ["pre_churn", "post_join", "post_leave", "recovery"];
    let mut rows = Vec::new();
    for (i, phase) in phases.iter().enumerate() {
        println!(
            "  {phase:<10}  rebalance {:>6.3}  baseline {:>6.3}",
            reb[i], base[i]
        );
        rows.push(format!(
            "    {{\"phase\": \"{phase}\", \"hit_rate_rebalance\": {:.4}, \
             \"hit_rate_baseline\": {:.4}}}",
            reb[i], base[i]
        ));
    }

    // The churn window is the two passes immediately after a view change.
    let reb_floor = reb[1].min(reb[2]);
    let base_floor = base[1].min(base[2]);
    let bar = RECOVERY_BAR * reb[0];
    let json = format!(
        "{{\n  \"bench\": \"rebalance\",\n  \"files\": {N_FILES},\n  \
         \"file_size_bytes\": {FILE_SIZE},\n  \"nodes\": {NODES},\n  \
         \"placement\": \"ring\",\n  \
         \"recovery_bar\": {bar:.4},\n  \"churn_floor_rebalance\": {reb_floor:.4},\n  \
         \"churn_floor_baseline\": {base_floor:.4},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_rebalance.json");
    std::fs::write(&out, json).expect("write results/BENCH_rebalance.json");
    println!("wrote {}", out.display());

    assert!(
        reb_floor >= bar,
        "with rebalancing the warm hit rate must stay >= {RECOVERY_BAR} x pre-churn \
         ({bar:.3}) through the churn window, got {reb_floor:.3}"
    );
    assert!(
        base_floor < bar,
        "without rebalancing the churn window must dip below the bar \
         ({bar:.3}), got {base_floor:.3} — the benchmark is not discriminating"
    );
}
