//! Tenant-QoS payoff benchmark: tail latency of a well-behaved job while a
//! misbehaving neighbour floods the same nodes with an unbounded read loop.
//!
//! Three arms on identical clusters with device service-time emulation
//! armed (an op-latency-dominated SSD, so device slots are the scarce
//! resource the scheduler arbitrates):
//!
//! * **solo** — the victim runs its epoch alone (QoS plan installed, no
//!   contention): the baseline tail.
//! * **qos_off** — an aggressor floods while the victim runs, with an empty
//!   weights plan: no quotas, no admission control, no fair scheduling.
//! * **qos_on** — the same flood with the weighted-fair plan installed: the
//!   aggressor's overflow is shed to the PFS ladder and the victim's reads
//!   are scheduled at 16x weight.
//!
//! The gate is the paper-level claim for multi-tenancy: with QoS on the
//! victim's p99 stays within 2x of its solo baseline, and is at least 3x
//! better than the unprotected (QoS off) tail.
//!
//! Run with `cargo bench -p hvac-bench --bench bench_qos`; emits
//! `results/BENCH_qos.json` at the repo root.

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_core::qos::QosOptions;
use hvac_pfs::MemStore;
use hvac_storage::DeviceModel;
use hvac_types::{Bandwidth, ByteSize, JobId, JobWeights, SimTime};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const NODES: u32 = 4;
const N_FILES: u64 = 64;
const FILE_SIZE: usize = 4096;
/// Aggressor rank count: enough concurrent floods that every node's worker
/// pool and device queue see real backlog.
const AGGRESSOR_THREADS: usize = 14;
/// Per-iteration pacing of each aggressor rank, modeling the loader's
/// nonzero per-sample compute. Without it the flood degenerates into a CPU
/// spin on small hosts and the measurement becomes OS-scheduler noise
/// instead of device contention.
const AGGRESSOR_PACE: std::time::Duration = std::time::Duration::from_micros(200);
/// The aggressor hammers a small hot set so its reads stay cached (and thus
/// burn device time) in every arm.
const AGG_FILES: u64 = 8;
const MEASURED_PASSES: usize = 5;
const VICTIM: JobId = JobId(7);
const AGGRESSOR: JobId = JobId(13);

/// An op-latency-dominated device: every cached read charges ~200 us of
/// device-queue time regardless of size, which is the contention QoS must
/// arbitrate.
fn device() -> DeviceModel {
    DeviceModel {
        op_latency: SimTime::from_micros(1000),
        read_bandwidth: Bandwidth::mib_per_sec(4096.0),
        write_bandwidth: Bandwidth::mib_per_sec(4096.0),
        max_iops: 500_000,
    }
}

fn sample(i: u64) -> PathBuf {
    PathBuf::from(format!("/gpfs/bench/sample_{i:08}.bin"))
}

fn build_cluster(qos_on: bool) -> Cluster {
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/bench"), N_FILES, |_| FILE_SIZE);
    let weights = if qos_on {
        JobWeights::parse("7=16@0.5,13=1@0.4").unwrap()
    } else {
        JobWeights::default()
    };
    let mut options = ClusterOptions::new(NODES, 1)
        .dataset_dir("/gpfs/bench")
        .cache_capacity(ByteSize(256 * 1024))
        .job_weights(weights)
        .qos(QosOptions {
            max_inflight: 1,
            queue_cap: 1,
            // An eighth of a file per cursor visit: the weight-1 aggressor
            // must accumulate deficit over 8 rounds per read while the
            // weight-16 victim's replenishment covers a whole file every
            // round. A large quantum would instead let the aggressor's
            // continuously-refilling queue drain dozens of reads
            // back-to-back.
            quantum: FILE_SIZE as u64 / 8,
        })
        .device_model(device());
    // Enough RPC workers that cheap shed requests drain in parallel; the
    // scarce resource is the device, which `max_inflight` guards.
    options.rpc_workers = 4;
    Cluster::new(pfs, options).expect("cluster options are valid")
}

/// Run the victim epoch: a warm-up pass, then `MEASURED_PASSES` measured
/// passes. Returns the p99 per-read latency in microseconds.
fn victim_p99_us(cluster: &Cluster) -> f64 {
    let client = cluster.client_for_job(VICTIM).expect("victim client");
    for i in 0..N_FILES {
        client.read_file(&sample(i)).expect("warm-up read");
    }
    let mut lat_us: Vec<u64> = Vec::with_capacity(N_FILES as usize * MEASURED_PASSES);
    for pass in 0..MEASURED_PASSES {
        for i in 0..N_FILES {
            let idx = (i + pass as u64 * 11) % N_FILES;
            let t0 = Instant::now();
            let data = client.read_file(&sample(idx)).expect("victim read");
            lat_us.push(t0.elapsed().as_micros() as u64);
            assert_eq!(data.len(), FILE_SIZE, "victim bytes must stay exact");
        }
    }
    lat_us.sort_unstable();
    lat_us[((lat_us.len() - 1) * 99) / 100] as f64
}

/// Start the unbounded aggressor flood; returns the stop flag and joins.
fn start_flood(cluster: &Cluster) -> (Arc<AtomicBool>, Vec<std::thread::JoinHandle<u64>>) {
    let stop = Arc::new(AtomicBool::new(false));
    let joins = (0..AGGRESSOR_THREADS)
        .map(|rank| {
            let client = cluster.client_for_job(AGGRESSOR).expect("aggressor client");
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = rank as u64;
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let idx = i % AGG_FILES;
                    let data = client.read_file(&sample(idx)).expect("flood read");
                    assert_eq!(data.len(), FILE_SIZE);
                    i += 3;
                    reads += 1;
                    std::thread::sleep(AGGRESSOR_PACE);
                }
                reads
            })
        })
        .collect();
    (stop, joins)
}

/// One contended arm: flood + victim epoch on a fresh cluster. Returns the
/// victim p99 and (aggressor reads, aggressor sheds) for context.
fn contended_arm(qos_on: bool) -> (f64, u64, u64) {
    let cluster = build_cluster(qos_on);
    let (stop, joins) = start_flood(&cluster);
    let p99 = victim_p99_us(&cluster);
    stop.store(true, Ordering::Relaxed);
    let flood_reads: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    let shed = cluster
        .tenant_metrics()
        .into_iter()
        .find(|r| r.job == AGGRESSOR.0)
        .map_or(0, |r| r.shed);
    (p99, flood_reads, shed)
}

fn main() {
    println!(
        "qos bench: {N_FILES} files x {FILE_SIZE} B on {NODES} nodes, \
         {AGGRESSOR_THREADS} aggressor ranks hammering {AGG_FILES} hot files \
         (200 us/op device model)"
    );

    let solo = victim_p99_us(&build_cluster(true));
    println!("  solo     p99 {solo:>8.0} us");
    let (off_p99, off_reads, off_shed) = contended_arm(false);
    println!("  qos_off  p99 {off_p99:>8.0} us  (flood {off_reads} reads, {off_shed} shed)");
    let (on_p99, on_reads, on_shed) = contended_arm(true);
    println!("  qos_on   p99 {on_p99:>8.0} us  (flood {on_reads} reads, {on_shed} shed)");

    let vs_solo = on_p99 / solo;
    let off_vs_on = off_p99 / on_p99;
    println!(
        "  qos_on/solo = {vs_solo:.2}x (gate <= 2), qos_off/qos_on = {off_vs_on:.2}x (gate >= 3)"
    );

    let json = format!(
        "{{\n  \"bench\": \"qos\",\n  \"files\": {N_FILES},\n  \
         \"file_size_bytes\": {FILE_SIZE},\n  \"nodes\": {NODES},\n  \
         \"aggressor_threads\": {AGGRESSOR_THREADS},\n  \
         \"solo_p99_us\": {solo:.1},\n  \"qos_off_p99_us\": {off_p99:.1},\n  \
         \"qos_on_p99_us\": {on_p99:.1},\n  \
         \"qos_on_vs_solo\": {vs_solo:.3},\n  \
         \"qos_off_vs_qos_on\": {off_vs_on:.3},\n  \
         \"aggressor_shed_qos_on\": {on_shed},\n  \
         \"aggressor_shed_qos_off\": {off_shed},\n  \
         \"gate_vs_solo_max\": 2.0,\n  \"gate_off_vs_on_min\": 3.0\n}}\n"
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_qos.json");
    std::fs::write(&out, json).expect("write results/BENCH_qos.json");
    println!("wrote {}", out.display());

    assert!(
        on_shed > 0,
        "with QoS on the flood must overflow the aggressor's queue cap"
    );
    assert!(
        vs_solo <= 2.0,
        "QoS must protect the victim's tail: contended p99 {on_p99:.0} us \
         is {vs_solo:.2}x its solo baseline {solo:.0} us (gate <= 2x)"
    );
    assert!(
        off_vs_on >= 3.0,
        "QoS must beat the unprotected tail by >= 3x: off {off_p99:.0} us \
         vs on {on_p99:.0} us is only {off_vs_on:.2}x"
    );
}
