//! Read hot-path latency harness: zero-copy data plane vs legacy path.
//!
//! Spins up a real [`Cluster`] per (transport, arm), warms every file into
//! the node-local caches, then fans out 1/4/8/16 reader threads — each with
//! its own client rank — issuing segmented reads and recording per-read
//! latency. The segment size is deliberately small (16 KiB on 256 KiB
//! files — 16 segments striped over 4 nodes) because small RPCs are what
//! the batching layer exists for: the zero-copy arm coalesces adjacent
//! segments, groups the rest into per-destination batch RPCs submitted
//! concurrently through the submission queue, and reassembles replies from
//! the slab pool, while the legacy arm (`zero_copy(false)`) walks the same
//! sixteen segments one sequential RPC at a time. Both arms run on the
//! in-process loopback fabric and on real TCP
//! sockets, so the reported percentiles cover both the protocol win
//! (fewer round trips) and the allocation win (pooled slabs instead of a
//! fresh mmap-backed buffer per read).
//!
//! Run with `cargo bench -p hvac-bench --bench bench_hotpath`; emits
//! `results/BENCH_hotpath.json` at the repo root and self-asserts the
//! tentpole gate: zero-copy p99 at 16 readers must not exceed the legacy
//! path's on either transport.

use hvac_bench::hist::{LatencyHist, Percentiles};
use hvac_core::{Cluster, ClusterOptions};
use hvac_pfs::MemStore;
use hvac_types::TransportKind;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const N_FILES: u64 = 64;
const FILE_SIZE: usize = 256 * 1024;
const SEGMENT_SIZE: u64 = 16 * 1024;
const READS_PER_THREAD: usize = 48;
const READER_COUNTS: [usize; 4] = [1, 4, 8, 16];
const REPS: usize = 3;
const NODES: u32 = 4;
const CLIENTS_PER_NODE: u32 = 4; // NODES * CLIENTS_PER_NODE >= max readers

fn sample(i: u64) -> PathBuf {
    PathBuf::from(format!("/gpfs/hot/sample_{i:08}.bin"))
}

fn build_cluster(transport: TransportKind, zero_copy: bool) -> Cluster {
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/hot"), N_FILES, |_| FILE_SIZE);
    Cluster::new(
        pfs,
        ClusterOptions::new(NODES, 1)
            .dataset_dir("/gpfs/hot")
            .clients_per_node(CLIENTS_PER_NODE)
            .zero_copy(zero_copy)
            .rebalance(false)
            .repair(false)
            .transport(transport),
    )
    .expect("cluster construction")
}

/// Pull every file through rank 0 once so the measured phase is all
/// node-cache hits, and verify the bytes while we are at it.
fn warm(cluster: &Cluster) {
    let client = cluster.client(0);
    for i in 0..N_FILES {
        let data = client
            .read_file_segmented(&sample(i), SEGMENT_SIZE)
            .expect("warm read");
        assert_eq!(
            data,
            MemStore::sample_content(i, FILE_SIZE),
            "warm read returned wrong bytes for file {i}"
        );
    }
}

/// One timed rep: `readers` threads, each on its own client rank, issue
/// `READS_PER_THREAD` segmented reads round-robin over the dataset with a
/// per-thread stride so the ranks do not move in lockstep. Returns the
/// merged latency histogram.
fn run_once(cluster: &Cluster, readers: usize) -> LatencyHist {
    let mut merged = LatencyHist::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(readers);
        for t in 0..readers {
            let client = cluster.client(t).clone();
            joins.push(scope.spawn(move || {
                let mut hist = LatencyHist::new();
                let mut bytes = 0usize;
                for r in 0..READS_PER_THREAD {
                    let i = (t as u64 * 17 + r as u64) % N_FILES;
                    let start = Instant::now();
                    let data = client
                        .read_file_segmented(&sample(i), SEGMENT_SIZE)
                        .expect("measured read");
                    hist.record(start.elapsed());
                    bytes += data.len();
                }
                assert_eq!(bytes, READS_PER_THREAD * FILE_SIZE);
                hist
            }));
        }
        for j in joins {
            merged.merge(&j.join().expect("reader thread panicked"));
        }
    });
    merged
}

/// Best-of-N percentiles (minimum p99 across reps) for one configuration —
/// the rep least disturbed by scheduler noise is the honest shape.
fn measure(cluster: &Cluster, readers: usize) -> (Percentiles, usize) {
    // Warm-up rep: thread-spawn paths, lazily dialed sockets.
    run_once(cluster, readers);
    let mut best: Option<Percentiles> = None;
    let mut samples = 0usize;
    for _ in 0..REPS {
        let hist = run_once(cluster, readers);
        samples = hist.len();
        let p = hist.percentiles().expect("non-empty rep");
        if best.is_none_or(|b| p.p99 < b.p99) {
            best = Some(p);
        }
    }
    (best.expect("REPS >= 1"), samples)
}

fn transport_name(t: TransportKind) -> &'static str {
    match t {
        TransportKind::Loopback => "loopback",
        TransportKind::Tcp => "tcp",
        TransportKind::Unix => "unix",
    }
}

fn main() {
    println!(
        "hotpath bench: {N_FILES} files x {FILE_SIZE} B, segment {SEGMENT_SIZE} B, \
         {READS_PER_THREAD} reads/thread, reps {REPS}"
    );

    let mut rows = Vec::new();
    let mut gates = Vec::new();
    let mut gate_failures = Vec::new();
    for transport in [TransportKind::Loopback, TransportKind::Tcp] {
        let tname = transport_name(transport);
        let mut p99_at_max = [0u64; 2]; // [zero_copy, legacy] at 16 readers
        for (slot, zero_copy) in [(0, true), (1, false)] {
            let arm = if zero_copy { "zero_copy" } else { "legacy" };
            let cluster = build_cluster(transport, zero_copy);
            warm(&cluster);
            for &readers in &READER_COUNTS {
                let (p, samples) = measure(&cluster, readers);
                println!(
                    "  {tname:<8} {arm:<9} readers={readers:>2}  \
                     p50 {:>9.1} us  p99 {:>9.1} us  p999 {:>9.1} us",
                    p.p50 as f64 / 1e3,
                    p.p99 as f64 / 1e3,
                    p.p999 as f64 / 1e3,
                );
                rows.push(format!(
                    "    {{\"transport\": \"{tname}\", \"arm\": \"{arm}\", \
                     \"readers\": {readers}, \"samples\": {samples}, \
                     \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
                    p.p50, p.p99, p.p999
                ));
                if readers == *READER_COUNTS.last().expect("non-empty") {
                    p99_at_max[slot] = p.p99;
                }
            }
        }
        let (zc, legacy) = (p99_at_max[0], p99_at_max[1]);
        let pass = zc <= legacy;
        gates.push(format!(
            "    {{\"transport\": \"{tname}\", \"zero_copy_p99_ns\": {zc}, \
             \"legacy_p99_ns\": {legacy}, \"pass\": {pass}}}"
        ));
        if !pass {
            gate_failures.push(format!(
                "{tname}: zero-copy p99 {zc} ns > legacy p99 {legacy} ns at 16 readers"
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"files\": {N_FILES},\n  \
         \"file_size_bytes\": {FILE_SIZE},\n  \"segment_size_bytes\": {SEGMENT_SIZE},\n  \
         \"reads_per_thread\": {READS_PER_THREAD},\n  \"reps\": {REPS},\n  \
         \"results\": [\n{}\n  ],\n  \"gate\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        gates.join(",\n"),
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_hotpath.json");
    std::fs::write(&out, json).expect("write results/BENCH_hotpath.json");
    println!("wrote {}", out.display());
    assert!(
        gate_failures.is_empty(),
        "hotpath gate failed: {}",
        gate_failures.join("; ")
    );
}
