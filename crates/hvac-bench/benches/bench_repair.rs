//! Crash-recovery payoff benchmark: warm hit rate and p99 read latency of
//! the first epoch after a node crash-stops and restarts, with the
//! anti-entropy repair scrubber on vs off.
//!
//! Two otherwise-identical 2x-replicated clusters serve the same dataset
//! and are seeded to full replication. Then node 1 crash-stops (cache and
//! in-flight state wiped, endpoints down) and restarts empty. With repair,
//! the restart kicks a scrubber pass that re-clones the node's share from
//! surviving replicas before the next epoch, so the post-restart pass runs
//! warm (hit rate >= 0.95). Without it, every read homed on the restarted
//! node is a cold miss that refaults from the PFS — the baseline cannot
//! clear the bar in the pass right after the restart, and only converges
//! an epoch later.
//!
//! Run with `cargo bench -p hvac-bench --bench bench_repair`; emits
//! `results/BENCH_repair.json` at the repo root.

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_pfs::MemStore;
use hvac_types::PlacementKind;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const NODES: u32 = 4;
const N_FILES: u64 = 128;
const FILE_SIZE: usize = 4096;
const RECOVERY_BAR: f64 = 0.95;

fn sample(i: u64) -> PathBuf {
    PathBuf::from(format!("/gpfs/bench/sample_{i:08}.bin"))
}

fn build_cluster(repair: bool) -> Cluster {
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/bench"), N_FILES, |_| FILE_SIZE);
    Cluster::new(
        pfs,
        ClusterOptions::new(NODES, 1)
            .dataset_dir("/gpfs/bench")
            .clients_per_node(1)
            .placement(PlacementKind::Ring)
            .replication(2)
            .repair(repair),
    )
    .expect("cluster options are valid")
}

/// One full epoch pass: a single rank reads every file exactly once.
/// Returns the warm hit rate over exactly this pass (from allocation-wide
/// counter deltas) and the p99 per-file read latency in microseconds.
fn epoch_pass(cluster: &Cluster) -> (f64, f64) {
    let before = cluster.aggregate_metrics();
    let client = cluster.client(0);
    let mut lat_us: Vec<u64> = Vec::with_capacity(N_FILES as usize);
    for i in 0..N_FILES {
        let t0 = Instant::now();
        let data = client.read_file(&sample(i)).expect("read must succeed");
        lat_us.push(t0.elapsed().as_micros() as u64);
        assert_eq!(data.len(), FILE_SIZE);
    }
    let after = cluster.aggregate_metrics();
    let reads = (after.reads - before.reads) as f64;
    let hits = (after.cache_hits - before.cache_hits) as f64;
    lat_us.sort_unstable();
    let p99 = lat_us[((lat_us.len() - 1) * 99) / 100] as f64;
    (hits / reads, p99)
}

/// Drive one cluster through seed, crash, restart; returns
/// [pre_crash, post_restart, steady] (hit rate, p99 us) samples.
fn recovery(cluster: &mut Cluster) -> [(f64, f64); 3] {
    // Cold pass to populate, then a scrubber pass to reach full 2x
    // replication — both clusters start from the same converged state
    // (seeding uses the explicit entry point, not the restart hook, so
    // the baseline is identically replicated before its crash).
    epoch_pass(cluster);
    cluster.start_repair();
    cluster.wait_repair().expect("seed pass ran");
    let pre_crash = epoch_pass(cluster);

    cluster.crash_node(1).expect("node 1 exists");
    cluster.restart_node(1).expect("node 1 restarts");
    // With repair on, the restart kicked a scrubber pass: let it finish,
    // charging its wall-clock to the recovery story rather than racing
    // the measuring pass. With repair off this is a no-op returning None.
    cluster.wait_repair();
    let post_restart = epoch_pass(cluster);

    // One more epoch: by now even the baseline has refaulted everything
    // back in organically, so both converge.
    let steady = epoch_pass(cluster);
    [pre_crash, post_restart, steady]
}

fn main() {
    println!(
        "repair bench: {N_FILES} files x {FILE_SIZE} B on {NODES} nodes \
         (Ring placement, 2x replication); crash node 1, restart, measure"
    );

    let mut with_rep = build_cluster(true);
    let mut baseline = build_cluster(false);
    let rep = recovery(&mut with_rep);
    let base = recovery(&mut baseline);
    with_rep.shutdown();
    baseline.shutdown();

    let phases = ["pre_crash", "post_restart", "steady"];
    let mut rows = Vec::new();
    for (i, phase) in phases.iter().enumerate() {
        println!(
            "  {phase:<12}  repair {:>6.3} (p99 {:>7.0} us)  baseline {:>6.3} (p99 {:>7.0} us)",
            rep[i].0, rep[i].1, base[i].0, base[i].1
        );
        rows.push(format!(
            "    {{\"phase\": \"{phase}\", \"hit_rate_repair\": {:.4}, \
             \"p99_us_repair\": {:.1}, \"hit_rate_baseline\": {:.4}, \
             \"p99_us_baseline\": {:.1}}}",
            rep[i].0, rep[i].1, base[i].0, base[i].1
        ));
    }

    // The gate is the pass immediately after the restart.
    let (rep_hit, _) = rep[1];
    let (base_hit, _) = base[1];
    let json = format!(
        "{{\n  \"bench\": \"repair\",\n  \"files\": {N_FILES},\n  \
         \"file_size_bytes\": {FILE_SIZE},\n  \"nodes\": {NODES},\n  \
         \"placement\": \"ring\",\n  \"replication\": 2,\n  \
         \"recovery_bar\": {RECOVERY_BAR},\n  \
         \"post_restart_hit_rate_repair\": {rep_hit:.4},\n  \
         \"post_restart_hit_rate_baseline\": {base_hit:.4},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_repair.json");
    std::fs::write(&out, json).expect("write results/BENCH_repair.json");
    println!("wrote {}", out.display());

    assert!(
        rep_hit >= RECOVERY_BAR,
        "with repair the post-restart epoch must run warm (hit rate >= \
         {RECOVERY_BAR}), got {rep_hit:.3}"
    );
    assert!(
        base_hit < RECOVERY_BAR,
        "without repair the post-restart epoch must dip below the bar \
         ({RECOVERY_BAR}), got {base_hit:.3} — the benchmark is not discriminating"
    );
}
