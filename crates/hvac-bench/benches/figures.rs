//! One Criterion bench per paper figure/table, each running the figure's
//! quick-mode sweep. `cargo bench` therefore regenerates (scaled-down
//! versions of) every artifact and tracks regressions in the generators;
//! the full paper-scale sweeps are produced by the `reproduce` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use hvac_bench::figures;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_quick");
    group.sample_size(10);

    group.bench_function("table1_summit_spec", |b| {
        b.iter(|| figures::table1::run(true))
    });
    group.bench_function("fig03_mdtest_32k", |b| b.iter(|| figures::fig3::run(true)));
    group.bench_function("fig04_mdtest_8m", |b| b.iter(|| figures::fig4::run(true)));
    group.bench_function("fig08_scaling_sweep", |b| {
        b.iter(|| figures::fig8::run(true))
    });
    group.bench_function("fig09_normalized", |b| b.iter(|| figures::fig9::run(true)));
    group.bench_function("fig10_epochs", |b| b.iter(|| figures::fig10::run(true)));
    group.bench_function("fig11_per_epoch", |b| b.iter(|| figures::fig11::run(true)));
    group.bench_function("fig12_batch_size", |b| b.iter(|| figures::fig12::run(true)));
    group.bench_function("fig13_locality", |b| b.iter(|| figures::fig13::run(true)));
    group.bench_function("fig14_accuracy", |b| b.iter(|| figures::fig14::run(true)));
    group.bench_function("fig15_balance", |b| b.iter(|| figures::fig15::run(true)));
    group.bench_function("ablation_placement_eviction", |b| {
        b.iter(|| figures::ablation::run(true))
    });
    group.finish();
}

criterion_group!(figures_bench, bench_tables);
criterion_main!(figures_bench);
