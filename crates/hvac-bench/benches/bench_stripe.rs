//! Stripe scaling micro-benchmark: 1-shard vs N-shard `LocalStore` reads.
//!
//! Measures aggregate read throughput of 1..16 reader threads against two
//! otherwise-identical stores — one with a single lock stripe (the old
//! global-mutex design) and one with the machine's default shard count —
//! each armed with the same [`DeviceModel`] so every read *holds its
//! shard's device queue* for a fixed modeled service time. That queue is
//! what makes the experiment meaningful on any host, including a 1-core CI
//! box: service times serialize within a shard and overlap across shards,
//! so the measured speedup is the lock-striping win itself, not a
//! scheduler artifact.
//!
//! Run with `cargo bench -p hvac-bench --bench bench_stripe`; emits
//! `results/BENCH_stripe.json` at the repo root.

use bytes::Bytes;
use hvac_storage::{DeviceModel, LocalStore};
use hvac_types::{Bandwidth, ByteSize, SimTime};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_FILES: u64 = 64;
const FILE_SIZE: usize = 4096;
const READS_PER_THREAD: usize = 24;
const OP_LATENCY_US: u64 = 500;
const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const TIMED_ITERS: usize = 3;

fn sample(i: u64) -> PathBuf {
    PathBuf::from(format!("/gpfs/bench/sample_{i:08}.bin"))
}

/// A device whose service time is a flat `OP_LATENCY_US` per read: the
/// bandwidth term is made negligible so the queue, not the payload, is the
/// measured quantity.
fn bench_device() -> DeviceModel {
    DeviceModel {
        op_latency: SimTime::from_micros(OP_LATENCY_US),
        read_bandwidth: Bandwidth::mib_per_sec(1e9),
        write_bandwidth: Bandwidth::mib_per_sec(1e9),
        max_iops: u64::MAX,
    }
}

fn preloaded_store(shards: usize) -> Arc<LocalStore> {
    let mut store =
        LocalStore::in_memory_striped(ByteSize((N_FILES + 1) * FILE_SIZE as u64), shards);
    store.set_device_model(bench_device());
    for i in 0..N_FILES {
        store
            .insert(&sample(i), Bytes::from(vec![i as u8; FILE_SIZE]))
            .expect("preload fits by construction");
    }
    Arc::new(store)
}

/// One timed run: `threads` readers each issue `READS_PER_THREAD` seeded-
/// shuffled reads; returns the wall time of the slowest reader cohort.
fn run_once(store: &Arc<LocalStore>, threads: usize, seed: u64) -> Duration {
    let start = Instant::now();
    let mut joins = Vec::with_capacity(threads);
    for t in 0..threads {
        let store = store.clone();
        joins.push(std::thread::spawn(move || {
            let mut order: Vec<u64> = (0..N_FILES).collect();
            let mut rng = StdRng::seed_from_u64(seed ^ ((t as u64) << 20));
            order.shuffle(&mut rng);
            let mut bytes = 0usize;
            for &i in order.iter().take(READS_PER_THREAD) {
                bytes += store.get(&sample(i)).expect("preloaded").len();
            }
            assert_eq!(bytes, READS_PER_THREAD * FILE_SIZE);
        }));
    }
    for j in joins {
        j.join().expect("reader thread panicked");
    }
    start.elapsed()
}

/// Median-of-N wall time for one (store, threads) configuration.
fn measure(store: &Arc<LocalStore>, threads: usize) -> Duration {
    // Warm-up pass (first-touch allocation, thread spawn paths).
    run_once(store, threads, 0xAAAA);
    let mut times: Vec<Duration> = (0..TIMED_ITERS)
        .map(|iter| run_once(store, threads, 0x5EED + iter as u64))
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn mibps(threads: usize, elapsed: Duration) -> f64 {
    let bytes = (threads * READS_PER_THREAD * FILE_SIZE) as f64;
    bytes / (1024.0 * 1024.0) / elapsed.as_secs_f64()
}

fn main() {
    let single = preloaded_store(1);
    let striped = preloaded_store(hvac_storage::default_shard_count());
    println!(
        "stripe bench: {} files x {} B, {} reads/thread, {} us/read device; shards 1 vs {}",
        N_FILES,
        FILE_SIZE,
        READS_PER_THREAD,
        OP_LATENCY_US,
        striped.shard_count()
    );

    let mut rows = Vec::new();
    let mut speedup_at_8 = 0.0f64;
    for &threads in &THREAD_COUNTS {
        let t_single = measure(&single, threads);
        let t_striped = measure(&striped, threads);
        let (s_mibps, n_mibps) = (mibps(threads, t_single), mibps(threads, t_striped));
        let speedup = n_mibps / s_mibps;
        if threads == 8 {
            speedup_at_8 = speedup;
        }
        println!(
            "  threads={threads:>2}  1-shard {s_mibps:>8.2} MiB/s  {n}-shard {n_mibps:>8.2} MiB/s  speedup {speedup:>5.2}x",
            n = striped.shard_count()
        );
        rows.push(format!(
            "    {{\"threads\": {threads}, \"single_shard_mib_per_s\": {s_mibps:.3}, \
             \"striped_mib_per_s\": {n_mibps:.3}, \"speedup\": {speedup:.3}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"stripe\",\n  \"files\": {N_FILES},\n  \"file_size_bytes\": {FILE_SIZE},\n  \
         \"reads_per_thread\": {READS_PER_THREAD},\n  \"device_op_latency_us\": {OP_LATENCY_US},\n  \
         \"single_shards\": 1,\n  \"striped_shards\": {},\n  \"results\": [\n{}\n  ],\n  \
         \"speedup_at_8_threads\": {speedup_at_8:.3}\n}}\n",
        striped.shard_count(),
        rows.join(",\n"),
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_stripe.json");
    std::fs::write(&out, json).expect("write results/BENCH_stripe.json");
    println!("wrote {}", out.display());
    assert!(
        speedup_at_8 >= 2.0,
        "striping must buy >= 2x aggregate read throughput at 8 threads, got {speedup_at_8:.2}x"
    );
}
