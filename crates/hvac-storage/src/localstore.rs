//! One node's NVMe cache: a capacity-accounted path→bytes store.
//!
//! The HVAC server's data mover copies files from the PFS into this store on
//! first access (paper §III-D step ⑥, `fs::copy(src, dst)`), and serves all
//! later reads from it. Capacity is enforced here; choosing a victim when
//! full is the cache manager's job (`hvac-core::eviction`).

use crate::capacity::CapacityGauge;
use bytes::Bytes;
use hvac_sync::{classes, OrderedMutex};
use hvac_types::{ByteSize, HvacError, Result};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Where the cached bytes physically live.
#[derive(Debug, Clone)]
pub enum Backing {
    /// In memory — fast, hermetic; the default for tests and simulation-free
    /// functional runs.
    Memory,
    /// In a real directory (one file per cached path), mirroring the paper's
    /// `fs::copy` onto the XFS-formatted NVMe.
    Directory(PathBuf),
}

#[derive(Debug)]
struct Entry {
    size: ByteSize,
    data: Option<Bytes>,   // Memory backing
    disk: Option<PathBuf>, // Directory backing
}

struct Inner {
    gauge: CapacityGauge,
    entries: HashMap<PathBuf, Entry>,
    insert_seq: u64,
}

/// A single node-local cache store.
pub struct LocalStore {
    backing: Backing,
    inner: OrderedMutex<Inner>,
}

impl LocalStore {
    /// An in-memory store of the given capacity.
    pub fn in_memory(capacity: ByteSize) -> Self {
        Self {
            backing: Backing::Memory,
            inner: OrderedMutex::new(
                classes::STORE_INNER,
                Inner {
                    gauge: CapacityGauge::new(capacity),
                    entries: HashMap::new(),
                    insert_seq: 0,
                },
            ),
        }
    }

    /// A directory-backed store of the given capacity rooted at `dir`
    /// (created if missing).
    pub fn on_directory<P: Into<PathBuf>>(dir: P, capacity: ByteSize) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            backing: Backing::Directory(dir),
            inner: OrderedMutex::new(
                classes::STORE_INNER,
                Inner {
                    gauge: CapacityGauge::new(capacity),
                    entries: HashMap::new(),
                    insert_seq: 0,
                },
            ),
        })
    }

    /// Insert a file. Fails with [`HvacError::CapacityExhausted`] if it does
    /// not fit (the caller should evict and retry). Replacing an existing
    /// path first releases its old accounting.
    pub fn insert(&self, path: &Path, data: Bytes) -> Result<()> {
        let size = ByteSize(data.len() as u64);
        let mut inner = self.inner.lock();
        if let Some(old) = inner.entries.remove(path) {
            let old_size = old.size;
            self.delete_backing(&old);
            inner.gauge.sub(old_size);
        }
        if !inner.gauge.fits(size) {
            return Err(HvacError::CapacityExhausted {
                requested: size.bytes(),
                capacity: inner.gauge.capacity().bytes(),
            });
        }
        let entry = match &self.backing {
            Backing::Memory => Entry {
                size,
                data: Some(data),
                disk: None,
            },
            Backing::Directory(root) => {
                let seq = inner.insert_seq;
                inner.insert_seq += 1;
                let disk = root.join(format!("obj_{seq:016x}"));
                fs::write(&disk, &data)?;
                Entry {
                    size,
                    data: None,
                    disk: Some(disk),
                }
            }
        };
        inner.gauge.add(size);
        inner.entries.insert(path.to_path_buf(), entry);
        Ok(())
    }

    /// Fetch a whole cached file, or `None` on a miss.
    pub fn get(&self, path: &Path) -> Option<Bytes> {
        let inner = self.inner.lock();
        let entry = inner.entries.get(path)?;
        match (&entry.data, &entry.disk) {
            (Some(d), _) => Some(d.clone()),
            (None, Some(disk)) => fs::read(disk).ok().map(Bytes::from),
            _ => None,
        }
    }

    /// Read a byte range of a cached file (`None` on a miss). Short reads at
    /// EOF return the available prefix.
    pub fn read_at(&self, path: &Path, offset: u64, len: usize) -> Option<Bytes> {
        let data = self.get(path)?;
        let size = data.len() as u64;
        if offset >= size {
            return Some(Bytes::new());
        }
        let end = (offset + len as u64).min(size) as usize;
        Some(data.slice(offset as usize..end))
    }

    /// Remove a cached file; returns the bytes freed (zero if absent).
    pub fn remove(&self, path: &Path) -> ByteSize {
        let mut inner = self.inner.lock();
        match inner.entries.remove(path) {
            Some(e) => {
                let sz = e.size;
                self.delete_backing(&e);
                inner.gauge.sub(sz);
                sz
            }
            None => ByteSize::ZERO,
        }
    }

    fn delete_backing(&self, entry: &Entry) {
        if let Some(disk) = &entry.disk {
            let _ = fs::remove_file(disk);
        }
    }

    /// Whether `path` is resident.
    pub fn contains(&self, path: &Path) -> bool {
        self.inner.lock().entries.contains_key(path)
    }

    /// Size of a resident file.
    pub fn size_of(&self, path: &Path) -> Option<ByteSize> {
        self.inner.lock().entries.get(path).map(|e| e.size)
    }

    /// Number of resident files.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes used.
    pub fn used(&self) -> ByteSize {
        self.inner.lock().gauge.used()
    }

    /// Total capacity.
    pub fn capacity(&self) -> ByteSize {
        self.inner.lock().gauge.capacity()
    }

    /// Whether an item of `size` could fit right now without eviction.
    pub fn fits(&self, size: ByteSize) -> bool {
        self.inner.lock().gauge.fits(size)
    }

    /// Whether an item of `size` could fit even after evicting everything.
    pub fn can_ever_fit(&self, size: ByteSize) -> bool {
        self.inner.lock().gauge.can_ever_fit(size)
    }

    /// Paths currently resident (unordered).
    pub fn resident_paths(&self) -> Vec<PathBuf> {
        self.inner.lock().entries.keys().cloned().collect()
    }

    /// Drop everything (job teardown: "the cached dataset is purged",
    /// §III-D).
    pub fn purge(&self) {
        let mut inner = self.inner.lock();
        let entries = std::mem::take(&mut inner.entries);
        for e in entries.values() {
            self.delete_backing(e);
        }
        let cap = inner.gauge.capacity();
        inner.gauge = CapacityGauge::new(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(cap: u64) -> LocalStore {
        LocalStore::in_memory(ByteSize(cap))
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let s = mem(100);
        let p = Path::new("/d/a");
        s.insert(p, Bytes::from_static(b"abcdef")).unwrap();
        assert!(s.contains(p));
        assert_eq!(s.len(), 1);
        assert_eq!(s.used(), ByteSize(6));
        assert_eq!(s.size_of(p), Some(ByteSize(6)));
        assert_eq!(&s.get(p).unwrap()[..], b"abcdef");
        assert_eq!(&s.read_at(p, 2, 2).unwrap()[..], b"cd");
        assert_eq!(&s.read_at(p, 4, 100).unwrap()[..], b"ef");
        assert_eq!(s.read_at(p, 100, 1).unwrap().len(), 0);
        assert_eq!(s.remove(p), ByteSize(6));
        assert!(!s.contains(p));
        assert_eq!(s.used(), ByteSize::ZERO);
        assert_eq!(s.remove(p), ByteSize::ZERO);
    }

    #[test]
    fn capacity_is_enforced() {
        let s = mem(10);
        s.insert(Path::new("/a"), Bytes::from(vec![0u8; 6]))
            .unwrap();
        let err = s
            .insert(Path::new("/b"), Bytes::from(vec![0u8; 5]))
            .unwrap_err();
        assert!(matches!(err, HvacError::CapacityExhausted { .. }));
        // After evicting /a there is room.
        s.remove(Path::new("/a"));
        s.insert(Path::new("/b"), Bytes::from(vec![0u8; 5]))
            .unwrap();
        assert!(s.can_ever_fit(ByteSize(10)));
        assert!(!s.can_ever_fit(ByteSize(11)));
    }

    #[test]
    fn replacing_a_path_releases_old_bytes() {
        let s = mem(10);
        let p = Path::new("/a");
        s.insert(p, Bytes::from(vec![0u8; 8])).unwrap();
        // Would not fit next to the old copy, but replacement frees it first.
        s.insert(p, Bytes::from(vec![1u8; 9])).unwrap();
        assert_eq!(s.used(), ByteSize(9));
        assert_eq!(s.get(p).unwrap()[0], 1);
    }

    #[test]
    fn purge_empties_the_store() {
        let s = mem(100);
        s.insert(Path::new("/a"), Bytes::from_static(b"xx"))
            .unwrap();
        s.insert(Path::new("/b"), Bytes::from_static(b"yy"))
            .unwrap();
        s.purge();
        assert!(s.is_empty());
        assert_eq!(s.used(), ByteSize::ZERO);
        assert_eq!(s.capacity(), ByteSize(100));
    }

    #[test]
    fn directory_backing_round_trips_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!(
            "hvac-localstore-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let s = LocalStore::on_directory(&dir, ByteSize(1000)).unwrap();
        let p = Path::new("/gpfs/data/s.bin");
        s.insert(p, Bytes::from_static(b"persisted")).unwrap();
        assert_eq!(&s.get(p).unwrap()[..], b"persisted");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        s.remove(p);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        // purge also removes disk objects
        s.insert(p, Bytes::from_static(b"x")).unwrap();
        s.purge();
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resident_paths_lists_everything() {
        let s = mem(100);
        s.insert(Path::new("/a"), Bytes::from_static(b"1")).unwrap();
        s.insert(Path::new("/b"), Bytes::from_static(b"2")).unwrap();
        let mut paths = s.resident_paths();
        paths.sort();
        assert_eq!(paths, vec![PathBuf::from("/a"), PathBuf::from("/b")]);
    }

    #[test]
    fn concurrent_inserts_respect_capacity() {
        use std::sync::Arc;
        let s = Arc::new(mem(1000));
        let mut joins = Vec::new();
        for t in 0..8 {
            let s = s.clone();
            joins.push(std::thread::spawn(move || {
                let mut ok = 0u32;
                for i in 0..50 {
                    let p = PathBuf::from(format!("/t{t}/f{i}"));
                    if s.insert(&p, Bytes::from(vec![0u8; 10])).is_ok() {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total_ok: u32 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        assert_eq!(total_ok as u64 * 10, s.used().bytes());
        assert!(s.used().bytes() <= 1000);
        assert_eq!(total_ok, 100); // exactly capacity/size inserts succeed
    }
}
