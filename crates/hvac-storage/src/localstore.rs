//! One node's NVMe cache: a capacity-accounted path→bytes store.
//!
//! The HVAC server's data mover copies files from the PFS into this store on
//! first access (paper §III-D step ⑥, `fs::copy(src, dst)`), and serves all
//! later reads from it. Capacity is enforced here; choosing a victim when
//! full is the cache manager's job (`hvac-core::eviction`).
//!
//! **Lock striping.** The entry map is split into a power-of-two number of
//! shards (default ~2× the machine's cores), each behind its own
//! [`hvac_sync::OrderedRwLock`] of class `STORE_SHARD`; a path's shard is
//! chosen by its hash. Readers of *different* shards never contend, readers
//! of the *same* shard share a read guard, and only same-shard writers
//! serialize — which is what lets a 16-rank node read at aggregate-NVMe
//! speed instead of one file at a time. Capacity accounting moved out of
//! the (formerly global) lock into atomics: an insert *reserves* its bytes
//! with a CAS loop before touching any shard, so `used()` can never exceed
//! `capacity()` no matter how many writers race.
//!
//! An optional [`DeviceModel`] arms per-shard *service-time emulation* for
//! benchmarks: each read then holds its shard's device-queue mutex (class
//! `STORE_DEVICE_QUEUE`, strictly innermost) for the modeled service time,
//! so reads serialize within a shard and overlap across shards exactly like
//! queue-per-LUN hardware.
//!
//! **Multi-tenancy.** Keys under `hvac_hash::pathhash::TENANT_PREFIX` belong
//! to a non-default tenant (job); everything else is the legacy/default
//! namespace (job 0). The store keeps per-tenant used/resident/hit/miss
//! accounting and optional per-tenant byte quotas: an insert must reserve
//! its bytes against the tenant's quota *and* the global capacity, so one
//! over-quota tenant fails fast without disturbing its neighbours. The
//! tenant table sits behind a `STORE_TENANT` lock, but the counters are
//! shared `Arc`ed relaxed atomics, so the read path never takes it — and
//! the default namespace reaches its slot without any lock at all.

use crate::device::DeviceModel;
use bytes::Bytes;
use hvac_hash::pathhash::{hash_path, split_tenant_key, TENANT_PREFIX};
use hvac_net::pool::BufferPool;
use hvac_sync::{classes, OrderedMutex, OrderedRwLock};
use hvac_types::{ByteSize, HvacError, JobId, JobWeights, Result};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where the cached bytes physically live.
#[derive(Debug, Clone)]
pub enum Backing {
    /// In memory — fast, hermetic; the default for tests and simulation-free
    /// functional runs.
    Memory,
    /// In a real directory (one file per cached path), mirroring the paper's
    /// `fs::copy` onto the XFS-formatted NVMe.
    Directory(PathBuf),
}

#[derive(Debug)]
struct Entry {
    size: ByteSize,
    data: Option<Bytes>,   // Memory backing
    disk: Option<PathBuf>, // Directory backing
    /// Whole-file reads served from this entry since it was inserted
    /// (replacement resets it). The repair scrubber uses this as its
    /// priority signal: hot files are re-replicated first.
    hits: AtomicU64,
}

type ShardMap = HashMap<PathBuf, Entry>;

/// Live per-tenant accounting. Counters are relaxed atomics reached through
/// a shared `Arc`, so the hot read path bumps them without any store lock;
/// the reserve CAS makes the per-tenant quota check-and-add atomic exactly
/// like the store-wide one.
#[derive(Debug)]
struct TenantStat {
    used: AtomicU64,
    resident: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Byte quota; `u64::MAX` means unlimited.
    quota: AtomicU64,
}

impl Default for TenantStat {
    fn default() -> Self {
        Self {
            used: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quota: AtomicU64::new(u64::MAX),
        }
    }
}

impl TenantStat {
    fn try_reserve(&self, size: ByteSize) -> bool {
        let quota = self.quota.load(Ordering::Relaxed);
        self.used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                used.checked_add(size.bytes()).filter(|&u| u <= quota)
            })
            .is_ok()
    }

    fn release(&self, size: ByteSize) {
        self.used.fetch_sub(size.bytes(), Ordering::Relaxed);
    }

    /// Release one resident entry's accounting (bytes and the entry count).
    fn drop_entry(&self, size: ByteSize) {
        self.release(size);
        self.resident.fetch_sub(1, Ordering::Relaxed);
    }

    fn snapshot(&self, job: JobId) -> TenantUsage {
        TenantUsage {
            job,
            used: ByteSize(self.used.load(Ordering::Relaxed)),
            resident: self.resident.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            quota: match self.quota.load(Ordering::Relaxed) {
                u64::MAX => None,
                q => Some(ByteSize(q)),
            },
        }
    }
}

/// A point-in-time view of one tenant's footprint in this store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantUsage {
    pub job: JobId,
    pub used: ByteSize,
    pub resident: u64,
    pub hits: u64,
    pub misses: u64,
    /// Configured byte quota, if any.
    pub quota: Option<ByteSize>,
}

/// Optional simulated-device service: one queue mutex per shard, so service
/// times serialize within a shard and overlap across shards.
struct DeviceService {
    model: DeviceModel,
    queues: Vec<OrderedMutex<()>>,
}

/// The default shard count for this machine: at least 8, about twice the
/// available cores, rounded up to a power of two (so shard selection is a
/// mask, not a division).
pub fn default_shard_count() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    (2 * cores).max(8).next_power_of_two()
}

/// A single node-local cache store, lock-striped across `shards` shards.
pub struct LocalStore {
    backing: Backing,
    shards: Vec<OrderedRwLock<ShardMap>>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
    capacity: ByteSize,
    /// Bytes accounted. Inserts reserve via CAS *before* mutating a shard,
    /// so this never exceeds `capacity` (relaxed ordering is enough: the
    /// invariant rides on RMW atomicity, not on cross-location ordering).
    used: AtomicU64,
    insert_seq: AtomicU64,
    /// Per-tenant accounting slots, keyed by job id. Guards only slot
    /// creation, quota updates and enumeration — never held across a shard
    /// lock acquisition; counters travel out as `Arc`s.
    tenants: OrderedRwLock<HashMap<u64, Arc<TenantStat>>>,
    /// The default namespace's slot, reachable without taking `tenants`.
    default_tenant: Arc<TenantStat>,
    device: Option<DeviceService>,
    /// Slab pool for Directory-backed reads: disk bytes land in a recycled
    /// slab instead of a fresh `Vec` per read. `None` (the default, and the
    /// only option for Memory backing, which is already zero-copy) keeps
    /// the legacy `fs::read` path.
    pool: Option<BufferPool>,
}

impl LocalStore {
    /// An in-memory store of the given capacity with the default shard
    /// count.
    pub fn in_memory(capacity: ByteSize) -> Self {
        Self::in_memory_striped(capacity, default_shard_count())
    }

    /// An in-memory store with an explicit shard count (rounded up to a
    /// power of two; `1` yields the old single-lock behaviour, which the
    /// stripe benchmarks and equivalence property tests compare against).
    pub fn in_memory_striped(capacity: ByteSize, shards: usize) -> Self {
        Self::build(Backing::Memory, capacity, shards)
    }

    /// A directory-backed store of the given capacity rooted at `dir`
    /// (created if missing), with the default shard count.
    pub fn on_directory<P: Into<PathBuf>>(dir: P, capacity: ByteSize) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self::build(
            Backing::Directory(dir),
            capacity,
            default_shard_count(),
        ))
    }

    fn build(backing: Backing, capacity: ByteSize, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| OrderedRwLock::new(classes::STORE_SHARD, ShardMap::new()))
            .collect();
        Self {
            backing,
            shards,
            mask: (n - 1) as u64,
            capacity,
            used: AtomicU64::new(0),
            insert_seq: AtomicU64::new(0),
            tenants: OrderedRwLock::new(classes::STORE_TENANT, HashMap::new()),
            default_tenant: Arc::new(TenantStat::default()),
            device: None,
            pool: None,
        }
    }

    /// Serve Directory-backed reads through `pool` (no-op for Memory
    /// backing). The pool's `NET_POOL` mutex sits strictly inside
    /// `STORE_SHARD` and `STORE_DEVICE_QUEUE` in the lock hierarchy, so
    /// acquiring a slab under a shard guard is a declared edge.
    pub fn set_buffer_pool(&mut self, pool: BufferPool) {
        self.pool = Some(pool);
    }

    /// Arm per-shard device service-time emulation: every read then holds
    /// its shard's device queue for `model.read_time(size)`. Benchmark-only
    /// knob — the functional cluster never arms it.
    pub fn set_device_model(&mut self, model: DeviceModel) {
        let queues = (0..self.shards.len())
            .map(|_| OrderedMutex::new(classes::STORE_DEVICE_QUEUE, ()))
            .collect();
        self.device = Some(DeviceService { model, queues });
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a path maps to (exposed so callers — the stripe
    /// benchmarks, the server's inflight table — can align their own
    /// striping with the store's).
    pub fn shard_of(&self, path: &Path) -> usize {
        (hash_path(path).0 & self.mask) as usize
    }

    /// Reserve `size` bytes against capacity; the CAS makes the check-and-
    /// add atomic, so concurrent writers can never overshoot.
    fn try_reserve(&self, size: ByteSize) -> bool {
        let cap = self.capacity.bytes();
        self.used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                used.checked_add(size.bytes()).filter(|&u| u <= cap)
            })
            .is_ok()
    }

    fn release(&self, size: ByteSize) {
        self.used.fetch_sub(size.bytes(), Ordering::Relaxed);
    }

    /// Get-or-create the accounting slot for a job.
    fn tenant(&self, job: JobId) -> Arc<TenantStat> {
        if job.is_default() {
            return self.default_tenant.clone();
        }
        if let Some(t) = self.tenants.read().get(&job.0) {
            return t.clone();
        }
        self.tenants.write().entry(job.0).or_default().clone()
    }

    /// Look up a slot without creating it.
    fn tenant_peek(&self, job: JobId) -> Option<Arc<TenantStat>> {
        if job.is_default() {
            return Some(self.default_tenant.clone());
        }
        self.tenants.read().get(&job.0).cloned()
    }

    /// The accounting slot a store key belongs to. Keys outside the reserved
    /// tenant prefix — every legacy key — resolve without taking any lock.
    fn tenant_for_key(&self, key: &Path) -> Arc<TenantStat> {
        if !key.starts_with(TENANT_PREFIX) {
            return self.default_tenant.clone();
        }
        self.tenant(split_tenant_key(key).0)
    }

    /// Set (or clear, with `None`) a tenant's byte quota. Quotas bound new
    /// reservations only; bytes already resident are never dropped here —
    /// shrinking below current use just makes further inserts fail until
    /// the cache manager evicts the tenant back under its line.
    pub fn set_tenant_quota(&self, job: JobId, quota: Option<ByteSize>) {
        self.tenant(job)
            .quota
            .store(quota.map_or(u64::MAX, |q| q.bytes()), Ordering::Relaxed);
    }

    /// Apply a [`JobWeights`] plan: every listed share gets
    /// `quota_frac × capacity` bytes (explicit `@frac`, or its proportional
    /// weight share by default). Unlisted jobs stay unlimited.
    pub fn set_tenant_quotas(&self, weights: &JobWeights) {
        for share in &weights.shares {
            if let Some(frac) = weights.quota_frac_of(share.job) {
                let bytes = (self.capacity.bytes() as f64 * frac).floor() as u64;
                self.set_tenant_quota(JobId(share.job), Some(ByteSize(bytes)));
            }
        }
    }

    /// Bytes a tenant currently has resident.
    pub fn tenant_used(&self, job: JobId) -> ByteSize {
        ByteSize(
            self.tenant_peek(job)
                .map_or(0, |t| t.used.load(Ordering::Relaxed)),
        )
    }

    /// A tenant's configured quota, if any.
    pub fn tenant_quota(&self, job: JobId) -> Option<ByteSize> {
        let t = self.tenant_peek(job)?;
        match t.quota.load(Ordering::Relaxed) {
            u64::MAX => None,
            q => Some(ByteSize(q)),
        }
    }

    /// Whether landing `incoming` more bytes would push `job` past its
    /// quota (always `false` for unlimited tenants). The cache manager uses
    /// this to keep quota-driven eviction inside the offending tenant.
    pub fn tenant_over_quota(&self, job: JobId, incoming: ByteSize) -> bool {
        let Some(t) = self.tenant_peek(job) else {
            return false;
        };
        let quota = t.quota.load(Ordering::Relaxed);
        quota != u64::MAX && t.used.load(Ordering::Relaxed) + incoming.bytes() > quota
    }

    /// Per-tenant usage snapshots (default namespace first, then by job id).
    pub fn tenant_usage(&self) -> Vec<TenantUsage> {
        let mut out = vec![self.default_tenant.snapshot(JobId::DEFAULT)];
        out.extend(
            self.tenants
                .read()
                .iter()
                .map(|(job, t)| t.snapshot(JobId(*job))),
        );
        out.sort_by_key(|u| u.job.0);
        out
    }

    /// Hold the shard's device queue for the modeled service time of one
    /// read of `size` bytes (no-op unless a [`DeviceModel`] is armed).
    fn service_read(&self, shard: usize, size: ByteSize) {
        if let Some(dev) = &self.device {
            let _queue = dev.queues[shard].lock();
            let t = dev.model.read_time(size).as_secs_f64();
            if t > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(t));
            }
        }
    }

    /// Put a displaced old copy back after a failed replacement. If a
    /// concurrent insert claimed the path while we were failing, the newer
    /// copy wins and the old one is dropped with its accounting (outside the
    /// shard guard — STORE_TENANT accounting never runs under STORE_SHARD).
    fn restore_entry(&self, shard: usize, path: &Path, old: Entry) {
        use std::collections::hash_map::Entry as Slot;
        let displaced = match self.shards[shard].write().entry(path.to_path_buf()) {
            Slot::Vacant(slot) => {
                slot.insert(old);
                None
            }
            Slot::Occupied(_) => Some(old),
        };
        if let Some(old) = displaced {
            self.delete_backing(&old);
            self.release(old.size);
            self.tenant_for_key(path).drop_entry(old.size);
        }
    }

    /// Insert a file. Fails with [`HvacError::CapacityExhausted`] if it does
    /// not fit globally *or* would push its tenant past a configured quota
    /// (the caller should evict and retry; the cache manager keeps
    /// quota-driven eviction inside the offending tenant). Replacing an
    /// existing path reserves only the *growth* over the resident copy, and
    /// a rejected insert leaves the resident copy exactly as it was.
    pub fn insert(&self, path: &Path, data: Bytes) -> Result<()> {
        let size = ByteSize(data.len() as u64);
        let shard = self.shard_of(path);
        let tenant = self.tenant_for_key(path);
        // Pull any old copy out of the map but keep its bytes accounted
        // until the replacement commits: a failed reservation restores it
        // untouched instead of clobbering resident data. The shard guard is
        // released between the critical sections — STORE_TENANT accounting
        // must never run under STORE_SHARD.
        let old = self.shards[shard].write().remove(path);
        let old_size = old.as_ref().map_or(0, |e| e.size.bytes());
        // A shrinking (or same-size) replacement always has headroom; only
        // reserve when the entry grows, so it still succeeds for a tenant
        // whose quota was lowered below its current use.
        let growth = ByteSize(size.bytes().saturating_sub(old_size));
        if growth.bytes() > 0 {
            let quota = tenant.quota.load(Ordering::Relaxed);
            if !tenant.try_reserve(growth) {
                if let Some(old) = old {
                    self.restore_entry(shard, path, old);
                }
                return Err(HvacError::CapacityExhausted {
                    requested: size.bytes(),
                    capacity: quota,
                });
            }
            if !self.try_reserve(growth) {
                tenant.release(growth);
                if let Some(old) = old {
                    self.restore_entry(shard, path, old);
                }
                return Err(HvacError::CapacityExhausted {
                    requested: size.bytes(),
                    capacity: self.capacity.bytes(),
                });
            }
        }
        let entry = match &self.backing {
            Backing::Memory => Entry {
                size,
                data: Some(data),
                disk: None,
                hits: AtomicU64::new(0),
            },
            Backing::Directory(root) => {
                let seq = self.insert_seq.fetch_add(1, Ordering::Relaxed);
                let disk = root.join(format!("obj_{seq:016x}"));
                if let Err(e) = fs::write(&disk, &data) {
                    // Roll the growth back: the bytes never landed.
                    self.release(growth);
                    tenant.release(growth);
                    if let Some(old) = old {
                        self.restore_entry(shard, path, old);
                    }
                    return Err(HvacError::Io(e));
                }
                Entry {
                    size,
                    data: None,
                    disk: Some(disk),
                    hits: AtomicU64::new(0),
                }
            }
        };
        // Commit: only now is the old copy's surplus released, so the
        // budgets never dip below what is actually resident.
        if let Some(old) = old {
            self.delete_backing(&old);
            let shrink = ByteSize(old_size.saturating_sub(size.bytes()));
            if shrink.bytes() > 0 {
                self.release(shrink);
                tenant.release(shrink);
            }
        } else {
            tenant.resident.fetch_add(1, Ordering::Relaxed);
        }
        let raced = self.shards[shard].write().insert(path.to_path_buf(), entry);
        if let Some(raced) = raced {
            // A concurrent insert of the same path landed between our two
            // shard critical sections; the newer copy wins, drop the other.
            self.delete_backing(&raced);
            self.release(raced.size);
            tenant.drop_entry(raced.size);
        }
        Ok(())
    }

    /// Read one disk object into a pooled slab (size known from the entry,
    /// so the slab is acquired once and filled with `read_exact`).
    fn read_disk_pooled(disk: &Path, size: ByteSize, pool: &BufferPool) -> Option<Bytes> {
        use std::io::Read;
        let mut f = fs::File::open(disk).ok()?;
        // lockgraph: acquires NET_POOL
        let mut buf = pool.acquire(size.bytes() as usize);
        f.read_exact(&mut buf).ok()?;
        Some(buf.freeze())
    }

    /// Fetch a whole cached file, or `None` on a miss.
    pub fn get(&self, path: &Path) -> Option<Bytes> {
        let shard = self.shard_of(path);
        let tenant = self.tenant_for_key(path);
        let data = {
            let map = self.shards[shard].read();
            map.get(path).and_then(|entry| {
                entry.hits.fetch_add(1, Ordering::Relaxed);
                match (&entry.data, &entry.disk) {
                    (Some(d), _) => Some(d.clone()),
                    (None, Some(disk)) => match &self.pool {
                        Some(pool) => Self::read_disk_pooled(disk, entry.size, pool),
                        None => fs::read(disk).ok().map(Bytes::from),
                    },
                    _ => None,
                }
            })
        };
        let Some(data) = data else {
            tenant.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        tenant.hits.fetch_add(1, Ordering::Relaxed);
        self.service_read(shard, ByteSize(data.len() as u64));
        Some(data)
    }

    /// Read a byte range of a cached file (`None` on a miss). Short reads at
    /// EOF return the available prefix.
    pub fn read_at(&self, path: &Path, offset: u64, len: usize) -> Option<Bytes> {
        let data = self.get(path)?;
        let size = data.len() as u64;
        if offset >= size {
            return Some(Bytes::new());
        }
        let end = (offset + len as u64).min(size) as usize;
        Some(data.slice(offset as usize..end))
    }

    /// Remove a cached file; returns the bytes freed (zero if absent).
    pub fn remove(&self, path: &Path) -> ByteSize {
        let shard = self.shard_of(path);
        let removed = self.shards[shard].write().remove(path);
        match removed {
            Some(e) => {
                let sz = e.size;
                self.delete_backing(&e);
                self.release(sz);
                self.tenant_for_key(path).drop_entry(sz);
                sz
            }
            None => ByteSize::ZERO,
        }
    }

    fn delete_backing(&self, entry: &Entry) {
        if let Some(disk) = &entry.disk {
            let _ = fs::remove_file(disk);
        }
    }

    /// Whether `path` is resident.
    pub fn contains(&self, path: &Path) -> bool {
        self.shards[self.shard_of(path)].read().contains_key(path)
    }

    /// Size of a resident file.
    pub fn size_of(&self, path: &Path) -> Option<ByteSize> {
        self.shards[self.shard_of(path)]
            .read()
            .get(path)
            .map(|e| e.size)
    }

    /// Number of resident files.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes used.
    pub fn used(&self) -> ByteSize {
        ByteSize(self.used.load(Ordering::Relaxed))
    }

    /// Total capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Whether an item of `size` could fit right now without eviction.
    pub fn fits(&self, size: ByteSize) -> bool {
        self.used.load(Ordering::Relaxed) + size.bytes() <= self.capacity.bytes()
    }

    /// Whether an item of `size` could fit even after evicting everything.
    pub fn can_ever_fit(&self, size: ByteSize) -> bool {
        size.bytes() <= self.capacity.bytes()
    }

    /// Paths currently resident (unordered).
    pub fn resident_paths(&self) -> Vec<PathBuf> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.read().keys().cloned());
        }
        out
    }

    /// Reads served from a resident entry since it was inserted (zero for
    /// absent paths).
    pub fn access_count(&self, path: &Path) -> u64 {
        self.shards[self.shard_of(path)]
            .read()
            .get(path)
            .map_or(0, |e| e.hits.load(Ordering::Relaxed))
    }

    /// Resident paths with their access counts (unordered); shards are
    /// read strictly one at a time.
    pub fn resident_with_access(&self) -> Vec<(PathBuf, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .read()
                    .iter()
                    .map(|(p, e)| (p.clone(), e.hits.load(Ordering::Relaxed))),
            );
        }
        out
    }

    /// Drop everything (job teardown: "the cached dataset is purged",
    /// §III-D). Shards are drained strictly one at a time — no thread ever
    /// holds two `STORE_SHARD` locks, so striping cannot deadlock purge.
    pub fn purge(&self) {
        for shard in &self.shards {
            let entries = std::mem::take(&mut *shard.write());
            for (key, e) in &entries {
                self.delete_backing(e);
                self.release(e.size);
                self.tenant_for_key(key).drop_entry(e.size);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(cap: u64) -> LocalStore {
        LocalStore::in_memory(ByteSize(cap))
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let s = mem(100);
        let p = Path::new("/d/a");
        s.insert(p, Bytes::from_static(b"abcdef")).unwrap();
        assert!(s.contains(p));
        assert_eq!(s.len(), 1);
        assert_eq!(s.used(), ByteSize(6));
        assert_eq!(s.size_of(p), Some(ByteSize(6)));
        assert_eq!(&s.get(p).unwrap()[..], b"abcdef");
        assert_eq!(&s.read_at(p, 2, 2).unwrap()[..], b"cd");
        assert_eq!(&s.read_at(p, 4, 100).unwrap()[..], b"ef");
        assert_eq!(s.read_at(p, 100, 1).unwrap().len(), 0);
        assert_eq!(s.remove(p), ByteSize(6));
        assert!(!s.contains(p));
        assert_eq!(s.used(), ByteSize::ZERO);
        assert_eq!(s.remove(p), ByteSize::ZERO);
    }

    #[test]
    fn capacity_is_enforced() {
        let s = mem(10);
        s.insert(Path::new("/a"), Bytes::from(vec![0u8; 6]))
            .unwrap();
        let err = s
            .insert(Path::new("/b"), Bytes::from(vec![0u8; 5]))
            .unwrap_err();
        assert!(matches!(err, HvacError::CapacityExhausted { .. }));
        // After evicting /a there is room.
        s.remove(Path::new("/a"));
        s.insert(Path::new("/b"), Bytes::from(vec![0u8; 5]))
            .unwrap();
        assert!(s.can_ever_fit(ByteSize(10)));
        assert!(!s.can_ever_fit(ByteSize(11)));
    }

    #[test]
    fn replacing_a_path_releases_old_bytes() {
        let s = mem(10);
        let p = Path::new("/a");
        s.insert(p, Bytes::from(vec![0u8; 8])).unwrap();
        // Would not fit next to the old copy, but replacement frees it first.
        s.insert(p, Bytes::from(vec![1u8; 9])).unwrap();
        assert_eq!(s.used(), ByteSize(9));
        assert_eq!(s.get(p).unwrap()[0], 1);
    }

    #[test]
    fn purge_empties_the_store() {
        let s = mem(100);
        s.insert(Path::new("/a"), Bytes::from_static(b"xx"))
            .unwrap();
        s.insert(Path::new("/b"), Bytes::from_static(b"yy"))
            .unwrap();
        s.purge();
        assert!(s.is_empty());
        assert_eq!(s.used(), ByteSize::ZERO);
        assert_eq!(s.capacity(), ByteSize(100));
    }

    #[test]
    fn directory_backing_round_trips_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!(
            "hvac-localstore-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let s = LocalStore::on_directory(&dir, ByteSize(1000)).unwrap();
        let p = Path::new("/gpfs/data/s.bin");
        s.insert(p, Bytes::from_static(b"persisted")).unwrap();
        assert_eq!(&s.get(p).unwrap()[..], b"persisted");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        s.remove(p);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        // purge also removes disk objects
        s.insert(p, Bytes::from_static(b"x")).unwrap();
        s.purge();
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pooled_directory_reads_match_unpooled_and_quiesce() {
        let dir = std::env::temp_dir().join(format!(
            "hvac-localstore-pool-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let pool = BufferPool::new();
        let mut s = LocalStore::on_directory(&dir, ByteSize(1 << 20)).unwrap();
        s.set_buffer_pool(pool.clone());
        let p = Path::new("/gpfs/data/pooled.bin");
        let payload = Bytes::from((0..9000u32).map(|x| x as u8).collect::<Vec<u8>>());
        s.insert(p, payload.clone()).unwrap();
        for _ in 0..3 {
            assert_eq!(s.get(p).unwrap(), payload);
            assert_eq!(&s.read_at(p, 5, 10).unwrap()[..], &payload[5..15]);
        }
        assert_eq!(pool.stats().in_flight(), 0, "all read slabs returned");
        assert!(pool.stats().pool_hits > 0, "reads recycled a slab");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resident_paths_lists_everything() {
        let s = mem(100);
        s.insert(Path::new("/a"), Bytes::from_static(b"1")).unwrap();
        s.insert(Path::new("/b"), Bytes::from_static(b"2")).unwrap();
        let mut paths = s.resident_paths();
        paths.sort();
        assert_eq!(paths, vec![PathBuf::from("/a"), PathBuf::from("/b")]);
    }

    #[test]
    fn access_counts_track_reads_and_reset_on_replace() {
        let s = mem(100);
        let p = Path::new("/hot");
        assert_eq!(s.access_count(p), 0, "absent paths read zero");
        s.insert(p, Bytes::from_static(b"abc")).unwrap();
        assert_eq!(s.access_count(p), 0);
        s.get(p).unwrap();
        s.read_at(p, 0, 1).unwrap(); // read_at goes through get
        assert_eq!(s.access_count(p), 2);
        s.insert(Path::new("/cold"), Bytes::from_static(b"z"))
            .unwrap();
        let mut counts = s.resident_with_access();
        counts.sort();
        assert_eq!(
            counts,
            vec![(PathBuf::from("/cold"), 0), (PathBuf::from("/hot"), 2)]
        );
        // Replacement is a new entry: the count restarts.
        s.insert(p, Bytes::from_static(b"abcd")).unwrap();
        assert_eq!(s.access_count(p), 0);
    }

    #[test]
    fn tenant_accounting_tracks_namespaced_keys() {
        use hvac_hash::pathhash::tenant_key;
        let s = mem(1000);
        let raw = Path::new("/gpfs/data/x.bin");
        let k1 = tenant_key(JobId(1), raw);
        let k2 = tenant_key(JobId(2), raw);
        s.insert(raw, Bytes::from(vec![0u8; 10])).unwrap();
        s.insert(&k1, Bytes::from(vec![1u8; 20])).unwrap();
        s.insert(&k2, Bytes::from(vec![2u8; 30])).unwrap();
        assert_eq!(s.tenant_used(JobId::DEFAULT), ByteSize(10));
        assert_eq!(s.tenant_used(JobId(1)), ByteSize(20));
        assert_eq!(s.tenant_used(JobId(2)), ByteSize(30));
        assert_eq!(s.used(), ByteSize(60), "global accounting still balances");

        s.get(&k1).unwrap();
        s.get(&k1).unwrap();
        assert!(s.get(&tenant_key(JobId(1), Path::new("/absent"))).is_none());
        let usage = s.tenant_usage();
        assert_eq!(
            usage.iter().map(|u| u.job.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let t1 = usage[1];
        assert_eq!((t1.resident, t1.hits, t1.misses), (1, 2, 1));

        // Replacement and removal release the right tenant's bytes.
        s.insert(&k1, Bytes::from(vec![1u8; 5])).unwrap();
        assert_eq!(s.tenant_used(JobId(1)), ByteSize(5));
        s.remove(&k2);
        assert_eq!(s.tenant_used(JobId(2)), ByteSize::ZERO);
        s.purge();
        for u in s.tenant_usage() {
            assert_eq!(u.used, ByteSize::ZERO, "job {}", u.job.0);
            assert_eq!(u.resident, 0, "job {}", u.job.0);
        }
        assert_eq!(s.used(), ByteSize::ZERO);
    }

    #[test]
    fn tenant_quota_is_enforced_independently_of_global_capacity() {
        use hvac_hash::pathhash::tenant_key;
        let s = mem(1000);
        s.set_tenant_quota(JobId(1), Some(ByteSize(25)));
        assert_eq!(s.tenant_quota(JobId(1)), Some(ByteSize(25)));
        assert_eq!(s.tenant_quota(JobId(2)), None);
        let k = |job, name: &str| tenant_key(JobId(job), Path::new(name));
        s.insert(&k(1, "/a"), Bytes::from(vec![0u8; 20])).unwrap();
        assert!(s.tenant_over_quota(JobId(1), ByteSize(10)));
        assert!(!s.tenant_over_quota(JobId(1), ByteSize(5)));
        assert!(!s.tenant_over_quota(JobId(2), ByteSize(900)));
        // Global capacity has plenty of room; the tenant quota still trips.
        let err = s
            .insert(&k(1, "/b"), Bytes::from(vec![0u8; 10]))
            .unwrap_err();
        assert!(matches!(
            err,
            HvacError::CapacityExhausted { capacity: 25, .. }
        ));
        // Another tenant and the default namespace are unaffected.
        s.insert(&k(2, "/b"), Bytes::from(vec![0u8; 10])).unwrap();
        s.insert(Path::new("/b"), Bytes::from(vec![0u8; 10]))
            .unwrap();
        // Quotas derived from a weights plan: job 1 gets 40% of capacity.
        let weights = JobWeights::parse("1=1@0.4,2=1").unwrap();
        s.set_tenant_quotas(&weights);
        assert_eq!(s.tenant_quota(JobId(1)), Some(ByteSize(400)));
        assert_eq!(s.tenant_quota(JobId(2)), Some(ByteSize(500)));
        s.insert(&k(1, "/b"), Bytes::from(vec![0u8; 10])).unwrap();
    }

    #[test]
    fn concurrent_inserts_respect_capacity() {
        use std::sync::Arc;
        let s = Arc::new(mem(1000));
        let mut joins = Vec::new();
        for t in 0..8 {
            let s = s.clone();
            joins.push(std::thread::spawn(move || {
                let mut ok = 0u32;
                for i in 0..50 {
                    let p = PathBuf::from(format!("/t{t}/f{i}"));
                    if s.insert(&p, Bytes::from(vec![0u8; 10])).is_ok() {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total_ok: u32 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        assert_eq!(total_ok as u64 * 10, s.used().bytes());
        assert!(s.used().bytes() <= 1000);
        assert_eq!(total_ok, 100); // exactly capacity/size inserts succeed
    }

    #[test]
    fn shard_counts_round_up_to_powers_of_two() {
        for (req, got) in [(1usize, 1usize), (2, 2), (3, 4), (8, 8), (9, 16)] {
            let s = LocalStore::in_memory_striped(ByteSize(100), req);
            assert_eq!(s.shard_count(), got, "requested {req}");
        }
        assert!(default_shard_count().is_power_of_two());
        assert!(default_shard_count() >= 8);
        assert_eq!(mem(1).shard_count(), default_shard_count());
    }

    #[test]
    fn shard_selection_is_stable_and_in_range() {
        let s = LocalStore::in_memory_striped(ByteSize(1000), 8);
        for i in 0..256 {
            let p = PathBuf::from(format!("/data/file_{i}"));
            let shard = s.shard_of(&p);
            assert!(shard < s.shard_count());
            assert_eq!(shard, s.shard_of(&p), "shard choice must be stable");
        }
    }

    #[test]
    fn single_shard_store_behaves_identically() {
        let s = LocalStore::in_memory_striped(ByteSize(30), 1);
        assert_eq!(s.shard_count(), 1);
        for i in 0..3 {
            s.insert(Path::new(&format!("/f{i}")), Bytes::from(vec![i as u8; 10]))
                .unwrap();
        }
        assert!(matches!(
            s.insert(Path::new("/f3"), Bytes::from(vec![3u8; 10])),
            Err(HvacError::CapacityExhausted { .. })
        ));
        assert_eq!(s.len(), 3);
        assert_eq!(s.used(), ByteSize(30));
    }

    #[test]
    fn device_model_service_serializes_within_a_shard() {
        use std::sync::Arc;
        use std::time::{Duration, Instant};
        // A model with a fat fixed latency and no bandwidth term to speak
        // of: 2 ms per read regardless of size.
        let model = DeviceModel {
            op_latency: hvac_types::SimTime::from_millis(2),
            read_bandwidth: hvac_types::Bandwidth::mib_per_sec(1e9),
            write_bandwidth: hvac_types::Bandwidth::mib_per_sec(1e9),
            max_iops: u64::MAX,
        };
        let mut one = LocalStore::in_memory_striped(ByteSize(10_000), 1);
        one.set_device_model(model.clone());
        let one = Arc::new(one);
        let path = PathBuf::from("/d/x");
        one.insert(&path, Bytes::from(vec![0u8; 8])).unwrap();
        // 4 concurrent readers of a 1-shard store serialize: >= 4 * 2 ms.
        let start = Instant::now();
        let mut joins = Vec::new();
        for _ in 0..4 {
            let s = one.clone();
            let p = path.clone();
            joins.push(std::thread::spawn(move || s.get(&p).unwrap()));
        }
        for j in joins {
            assert_eq!(j.join().unwrap().len(), 8);
        }
        assert!(
            start.elapsed() >= Duration::from_millis(8),
            "1-shard reads must serialize behind the device queue"
        );
    }
}
