//! Storage-device performance envelopes.
//!
//! The simulator charges I/O against these models: a fixed per-operation
//! latency, a sequential bandwidth, and an IOPS ceiling — enough to
//! reproduce the two regimes the paper's MDTest motivates (Figs. 3 and 4:
//! op-bound small files vs. bandwidth-bound large files).

use hvac_types::{Bandwidth, ByteSize, NvmeConfig, SimTime};
use serde::{Deserialize, Serialize};

/// Performance model of one storage device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Fixed software+device latency per operation.
    pub op_latency: SimTime,
    /// Sequential read bandwidth.
    pub read_bandwidth: Bandwidth,
    /// Sequential write bandwidth.
    pub write_bandwidth: Bandwidth,
    /// Random-read operations-per-second ceiling.
    pub max_iops: u64,
}

impl DeviceModel {
    /// Summit's node-local 1.6 TB NVMe with XFS (Table I / §II-C): ~5.5 GB/s
    /// read as implied by the 22.5 TB/s aggregate at 4,096 nodes.
    pub fn summit_nvme() -> Self {
        Self::from_nvme_config(&NvmeConfig::default())
    }

    /// Build from a [`NvmeConfig`].
    pub fn from_nvme_config(cfg: &NvmeConfig) -> Self {
        Self {
            op_latency: SimTime::from_nanos(cfg.op_latency_ns),
            read_bandwidth: cfg.read_bandwidth,
            write_bandwidth: cfg.write_bandwidth,
            max_iops: cfg.max_iops,
        }
    }

    /// A SATA-class SSD (ablation comparisons).
    pub fn sata_ssd() -> Self {
        Self {
            op_latency: SimTime::from_micros(80),
            read_bandwidth: Bandwidth::mib_per_sec(550.0),
            write_bandwidth: Bandwidth::mib_per_sec(500.0),
            max_iops: 90_000,
        }
    }

    /// A 7200 rpm hard disk (ablation comparisons).
    pub fn hdd() -> Self {
        Self {
            op_latency: SimTime::from_millis(8),
            read_bandwidth: Bandwidth::mib_per_sec(180.0),
            write_bandwidth: Bandwidth::mib_per_sec(160.0),
            max_iops: 120,
        }
    }

    /// Service time of one read of `size` bytes: latency + transfer, floored
    /// by the IOPS ceiling (`1/max_iops` per op).
    pub fn read_time(&self, size: ByteSize) -> SimTime {
        let transfer = SimTime::from_secs_f64(self.read_bandwidth.transfer_secs(size));
        let iops_floor = self.iops_floor();
        let t = self.op_latency.saturating_add(transfer);
        if t < iops_floor {
            iops_floor
        } else {
            t
        }
    }

    /// Service time of one write of `size` bytes.
    pub fn write_time(&self, size: ByteSize) -> SimTime {
        let transfer = SimTime::from_secs_f64(self.write_bandwidth.transfer_secs(size));
        let iops_floor = self.iops_floor();
        let t = self.op_latency.saturating_add(transfer);
        if t < iops_floor {
            iops_floor
        } else {
            t
        }
    }

    /// Minimum per-op spacing implied by the IOPS ceiling.
    fn iops_floor(&self) -> SimTime {
        match 1_000_000_000u64.checked_div(self.max_iops) {
            None => SimTime::ZERO,
            Some(ns) => SimTime::from_nanos(ns),
        }
    }

    /// Small-file transactions per second this device sustains for
    /// `<open-read-close>` of `size` bytes (the MDTest metric).
    pub fn transactions_per_sec(&self, size: ByteSize) -> f64 {
        let t = self.read_time(size).as_secs_f64();
        if t <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_nvme_matches_paper_aggregate() {
        let d = DeviceModel::summit_nvme();
        // 4096 nodes * per-node read bandwidth ≈ 22.5 TB/s (§II-C).
        let agg = d.read_bandwidth.as_bytes_per_sec() * 4096.0;
        assert!(agg > 21.0e12 && agg < 24.0e12, "aggregate {agg}");
    }

    #[test]
    fn read_time_small_is_latency_dominated() {
        let d = DeviceModel::summit_nvme();
        let t_small = d.read_time(ByteSize::kib(32));
        // 32 KiB at 5.5 GB/s is ~6 us; latency is 25 us, so total < 40 us.
        assert!(t_small.as_nanos() > 25_000);
        assert!(t_small.as_nanos() < 40_000);
    }

    #[test]
    fn read_time_large_is_bandwidth_dominated() {
        let d = DeviceModel::summit_nvme();
        let t = d.read_time(ByteSize::mib(8)).as_secs_f64();
        let pure_bw = d.read_bandwidth.transfer_secs(ByteSize::mib(8));
        assert!(t >= pure_bw);
        assert!(t < pure_bw * 1.1);
    }

    #[test]
    fn iops_ceiling_floors_tiny_reads() {
        let mut d = DeviceModel::summit_nvme();
        d.op_latency = SimTime::ZERO;
        d.max_iops = 1000; // 1 ms spacing
        assert_eq!(d.read_time(ByteSize(1)).as_nanos(), 1_000_000);
        d.max_iops = 0; // unlimited
        assert!(d.read_time(ByteSize(1)).as_nanos() < 1000);
    }

    #[test]
    fn device_ordering_nvme_faster_than_ssd_faster_than_hdd() {
        let sz = ByteSize::mib(1);
        let nvme = DeviceModel::summit_nvme().read_time(sz);
        let ssd = DeviceModel::sata_ssd().read_time(sz);
        let hdd = DeviceModel::hdd().read_time(sz);
        assert!(nvme < ssd);
        assert!(ssd < hdd);
    }

    #[test]
    fn transactions_per_sec_inverts_read_time() {
        let d = DeviceModel::summit_nvme();
        let sz = ByteSize::kib(32);
        let tps = d.transactions_per_sec(sz);
        assert!((tps * d.read_time(sz).as_secs_f64() - 1.0).abs() < 1e-9);
    }
}
