//! Node-local storage substrate for HVAC.
//!
//! Each Summit compute node carries a 1.6 TB NVMe SSD formatted with XFS
//! (Table I); HVAC aggregates those into its distributed cache tier. This
//! crate provides:
//!
//! * [`LocalStore`] — a capacity-accounted key→bytes store playing the role
//!   of one node's NVMe. It can keep data in memory (fast hermetic tests) or
//!   on a real directory (the functional examples). Inserting past capacity
//!   fails with [`hvac_types::HvacError::CapacityExhausted`]; deciding *what*
//!   to evict is the cache manager's job (`hvac-core`).
//! * [`CapacityGauge`] — watermark bookkeeping shared by the store and the
//!   eviction logic.
//! * [`DeviceModel`] — latency/bandwidth/IOPS envelopes of storage devices,
//!   consumed by the at-scale simulator.

pub mod capacity;
pub mod device;
pub mod localstore;

pub use capacity::CapacityGauge;
pub use device::DeviceModel;
pub use localstore::{default_shard_count, Backing, LocalStore, TenantUsage};
