//! Capacity accounting with watermarks.

use hvac_types::ByteSize;

/// Tracks used vs. total capacity of a store and answers the two questions
/// eviction cares about: "does this fit?" and "are we above the watermark?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityGauge {
    capacity: ByteSize,
    used: ByteSize,
}

impl CapacityGauge {
    /// A gauge over `capacity` bytes, initially empty.
    pub fn new(capacity: ByteSize) -> Self {
        Self {
            capacity,
            used: ByteSize::ZERO,
        }
    }

    /// Total capacity.
    #[inline]
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes currently accounted.
    #[inline]
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Bytes still free.
    #[inline]
    pub fn free(&self) -> ByteSize {
        self.capacity.saturating_sub(self.used)
    }

    /// Fraction used, in `[0, 1]` (0 for a zero-capacity gauge).
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.used.ratio(self.capacity)
    }

    /// Whether `size` more bytes would fit.
    #[inline]
    pub fn fits(&self, size: ByteSize) -> bool {
        self.used.bytes() + size.bytes() <= self.capacity.bytes()
    }

    /// Whether an item of `size` could *ever* fit (even into an empty store).
    #[inline]
    pub fn can_ever_fit(&self, size: ByteSize) -> bool {
        size.bytes() <= self.capacity.bytes()
    }

    /// Whether utilization exceeds `watermark` (e.g. 0.95).
    #[inline]
    pub fn above_watermark(&self, watermark: f64) -> bool {
        self.utilization() > watermark
    }

    /// Account an insertion. Caller must have checked [`CapacityGauge::fits`].
    #[inline]
    pub fn add(&mut self, size: ByteSize) {
        self.used += size;
        debug_assert!(self.used.bytes() <= self.capacity.bytes());
    }

    /// Account a removal.
    #[inline]
    pub fn sub(&mut self, size: ByteSize) {
        self.used = self.used.saturating_sub(size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut g = CapacityGauge::new(ByteSize(100));
        assert_eq!(g.free(), ByteSize(100));
        assert!(g.fits(ByteSize(100)));
        assert!(!g.fits(ByteSize(101)));
        g.add(ByteSize(60));
        assert_eq!(g.used(), ByteSize(60));
        assert_eq!(g.free(), ByteSize(40));
        assert!(g.fits(ByteSize(40)));
        assert!(!g.fits(ByteSize(41)));
        g.sub(ByteSize(10));
        assert_eq!(g.used(), ByteSize(50));
        assert!((g.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn watermarks() {
        let mut g = CapacityGauge::new(ByteSize(100));
        g.add(ByteSize(96));
        assert!(g.above_watermark(0.95));
        assert!(!g.above_watermark(0.96));
    }

    #[test]
    fn can_ever_fit_vs_fits() {
        let mut g = CapacityGauge::new(ByteSize(10));
        g.add(ByteSize(8));
        assert!(!g.fits(ByteSize(5)));
        assert!(g.can_ever_fit(ByteSize(5))); // evicting could make room
        assert!(!g.can_ever_fit(ByteSize(11))); // hopeless
    }

    #[test]
    fn sub_saturates() {
        let mut g = CapacityGauge::new(ByteSize(10));
        g.sub(ByteSize(5));
        assert_eq!(g.used(), ByteSize::ZERO);
    }

    #[test]
    fn zero_capacity_utilization_is_zero() {
        let g = CapacityGauge::new(ByteSize::ZERO);
        assert_eq!(g.utilization(), 0.0);
        assert!(!g.above_watermark(0.0));
    }
}
