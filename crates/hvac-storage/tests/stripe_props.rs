//! Property test: lock striping is an *implementation* detail.
//!
//! For any sequence of store operations over any path set, a store with N
//! shards must be observationally identical to the single-shard (old
//! single-global-lock) store: same per-op results, same residency, same
//! bytes, same accounting. Striping may only change *who contends*, never
//! *what the store contains*.

use bytes::Bytes;
use hvac_storage::LocalStore;
use hvac_types::{ByteSize, HvacError};
use proptest::prelude::*;
use std::path::PathBuf;

#[derive(Debug, Clone)]
enum Op {
    Insert { path: u8, len: u8 },
    Remove { path: u8 },
    Purge,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted 8:3:1 insert/remove/purge via a selector byte (the vendored
    // proptest's `prop_oneof!` is uniform-only).
    (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(sel, path, len)| match sel % 12 {
        0..=7 => Op::Insert {
            path: path % 24,
            len,
        },
        8..=10 => Op::Remove { path: path % 24 },
        _ => Op::Purge,
    })
}

fn path_of(idx: u8) -> PathBuf {
    PathBuf::from(format!("/gpfs/props/sample_{idx:04}.bin"))
}

/// Deterministic per-(path, len) content so a get() comparison is
/// meaningful, not just a length check.
fn content(path: u8, len: u8) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| i.wrapping_mul(31) ^ path)
            .collect::<Vec<u8>>(),
    )
}

fn observable_state(store: &LocalStore) -> (usize, u64, Vec<(PathBuf, Option<Bytes>)>) {
    let mut paths = store.resident_paths();
    paths.sort();
    let entries = paths
        .into_iter()
        .map(|p| {
            let data = store.get(&p);
            (p, data)
        })
        .collect();
    (store.len(), store.used().bytes(), entries)
}

proptest! {
    #[test]
    fn striped_store_is_observationally_single_shard(
        ops in proptest::collection::vec(op_strategy(), 0..64),
        shards in 1usize..33,
        capacity in 0u64..2048,
    ) {
        let reference = LocalStore::in_memory_striped(ByteSize(capacity), 1);
        let striped = LocalStore::in_memory_striped(ByteSize(capacity), shards);
        prop_assert_eq!(reference.shard_count(), 1);

        for op in &ops {
            match op {
                Op::Insert { path, len } => {
                    let p = path_of(*path);
                    let data = content(*path, *len);
                    let a = reference.insert(&p, data.clone());
                    let b = striped.insert(&p, data);
                    // Same outcome, including the CapacityExhausted cases.
                    match (&a, &b) {
                        (Ok(()), Ok(())) => {}
                        (
                            Err(HvacError::CapacityExhausted { .. }),
                            Err(HvacError::CapacityExhausted { .. }),
                        ) => {}
                        other => prop_assert!(false, "diverged on insert: {other:?}"),
                    }
                }
                Op::Remove { path } => {
                    let p = path_of(*path);
                    prop_assert_eq!(reference.remove(&p), striped.remove(&p));
                }
                Op::Purge => {
                    reference.purge();
                    striped.purge();
                }
            }
            // Accounting tracks in lockstep after every op.
            prop_assert_eq!(reference.used(), striped.used());
            prop_assert_eq!(reference.len(), striped.len());
        }

        // Full observable state (residency, contents, sizes) is identical.
        prop_assert_eq!(observable_state(&reference), observable_state(&striped));
        for idx in 0..24u8 {
            let p = path_of(idx);
            prop_assert_eq!(reference.contains(&p), striped.contains(&p));
            prop_assert_eq!(reference.size_of(&p), striped.size_of(&p));
            prop_assert_eq!(reference.read_at(&p, 3, 5), striped.read_at(&p, 3, 5));
        }
        prop_assert!(striped.used().bytes() <= capacity);
    }
}
