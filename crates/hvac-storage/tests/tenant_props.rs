//! Property tests: per-tenant quota isolation is airtight under churn.
//!
//! Tenants share one capacity-accounted store but must never share fate:
//! a tenant slamming into its quota gets `CapacityExhausted` without a
//! single byte of any *other* tenant being touched, and the per-tenant
//! ledgers always sum to the store's global accounting — sequentially and
//! under concurrent multi-tenant churn.

use bytes::Bytes;
use hvac_hash::pathhash::tenant_key;
use hvac_storage::LocalStore;
use hvac_types::{ByteSize, JobId};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert { path: u8, len: u8 },
    Remove { path: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted 3:1 insert/remove via a selector byte.
    (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(sel, path, len)| match sel % 4 {
        0..=2 => Op::Insert {
            path: path % 16,
            len: len.max(1),
        },
        _ => Op::Remove { path: path % 16 },
    })
}

fn key_of(job: u64, idx: u8) -> PathBuf {
    tenant_key(
        JobId(job),
        &PathBuf::from(format!("/gpfs/props/sample_{idx:04}.bin")),
    )
}

fn content(job: u64, idx: u8, len: u8) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| i.wrapping_mul(31) ^ idx ^ (job as u8))
            .collect::<Vec<u8>>(),
    )
}

/// Per-tenant used bytes must always sum to the global gauge, and each
/// tenant must respect its own quota.
fn assert_ledger_balances(store: &LocalStore) {
    let rows = store.tenant_usage();
    let total: u64 = rows.iter().map(|r| r.used.bytes()).sum();
    assert_eq!(
        total,
        store.used().bytes(),
        "tenant ledgers must sum to the global gauge: {rows:?}"
    );
    for row in &rows {
        if let Some(quota) = row.quota {
            assert!(
                row.used <= quota,
                "tenant {} over quota: {row:?}",
                row.job.0
            );
        }
    }
}

proptest! {
    /// Sequential churn: two quota'd tenants interleave arbitrary
    /// insert/remove streams. The victim tenant's resident set only ever
    /// changes through its *own* ops — the aggressor exhausting its quota
    /// never disturbs it — and the ledgers balance after every op.
    #[test]
    fn quota_rejections_never_touch_the_other_tenant(
        ops_a in proptest::collection::vec(op_strategy(), 1..48),
        ops_b in proptest::collection::vec(op_strategy(), 1..48),
    ) {
        let store = LocalStore::in_memory(ByteSize(4096));
        store.set_tenant_quota(JobId(1), Some(ByteSize(1024)));
        store.set_tenant_quota(JobId(2), Some(ByteSize(1024)));

        // Interleave the two tenants' streams one op at a time.
        let mut resident: std::collections::HashMap<PathBuf, Bytes> = Default::default();
        let longest = ops_a.len().max(ops_b.len());
        for i in 0..longest {
            for (job, ops) in [(1u64, &ops_a), (2u64, &ops_b)] {
                let Some(op) = ops.get(i) else { continue };
                match op {
                    Op::Insert { path, len } => {
                        let key = key_of(job, *path);
                        let data = content(job, *path, *len);
                        if store.insert(&key, data.clone()).is_ok() {
                            resident.insert(key, data);
                        }
                        // On failure the model keeps the previous entry —
                        // a rejected insert must not clobber anything.
                    }
                    Op::Remove { path } => {
                        let key = key_of(job, *path);
                        store.remove(&key);
                        resident.remove(&key);
                    }
                }
                assert_ledger_balances(&store);
            }
        }

        // Every model entry — both tenants' — is resident and byte-exact.
        for (key, data) in &resident {
            prop_assert_eq!(
                store.get(key),
                Some(data.clone()),
                "{} disturbed by the other tenant's churn",
                key.display()
            );
        }
        prop_assert_eq!(store.len(), resident.len());
        prop_assert!(store.tenant_used(JobId(1)) <= ByteSize(1024));
        prop_assert!(store.tenant_used(JobId(2)) <= ByteSize(1024));
    }

    /// Concurrent churn: one thread per tenant hammers its own namespace.
    /// Threads never touch each other's keys, so any cross-tenant damage
    /// can only come from broken shared accounting. Afterwards the pinned
    /// victim entries (inserted up-front, never removed) are still resident
    /// byte-exact and the ledgers balance.
    #[test]
    fn concurrent_multi_tenant_churn_preserves_isolation(
        seeds in proptest::collection::vec(any::<u64>(), 3),
    ) {
        let store = Arc::new(LocalStore::in_memory(ByteSize(64 * 1024)));
        // Victim (job 9) fills half its quota and then goes idle.
        store.set_tenant_quota(JobId(9), Some(ByteSize(4096)));
        let mut pinned = Vec::new();
        for idx in 0..8u8 {
            let key = key_of(9, idx);
            let data = content(9, idx, 255);
            store.insert(&key, data.clone()).unwrap();
            pinned.push((key, data));
        }

        // Aggressors (jobs 1..=3) churn way past their quotas in parallel.
        let mut joins = Vec::new();
        for (t, seed) in seeds.iter().enumerate() {
            let job = t as u64 + 1;
            let store = store.clone();
            let mut state = *seed | 1;
            joins.push(std::thread::spawn(move || {
                store.set_tenant_quota(JobId(job), Some(ByteSize(2048)));
                for _ in 0..256 {
                    // xorshift64 churn driver.
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let idx = (state >> 8) as u8 % 16;
                    if state % 4 == 0 {
                        store.remove(&key_of(job, idx));
                    } else {
                        let len = (state >> 16) as u8 | 1;
                        let _ = store.insert(&key_of(job, idx), content(job, idx, len));
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }

        for (key, data) in &pinned {
            prop_assert_eq!(
                store.get(key),
                Some(data.clone()),
                "victim entry {} lost under aggressor churn",
                key.display()
            );
        }
        assert_ledger_balances(&store);
        prop_assert_eq!(store.tenant_used(JobId(9)), ByteSize(8 * 255));
        for job in 1..=3u64 {
            prop_assert!(store.tenant_used(JobId(job)) <= ByteSize(2048));
        }
    }
}
