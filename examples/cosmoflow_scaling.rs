//! Strong-scaling sweep for CosmoFlow (the I/O-heaviest application in the
//! paper: a 51 K-parameter network over ~2.5 MB TFRecord samples), printing
//! the Fig. 8(c)-style series.
//!
//! ```text
//! cargo run --release -p hvac-examples --example cosmoflow_scaling
//! ```

use hvac_dl::{simulate_training, DatasetSpec, DnnModel, TrainingConfig};
use hvac_sim::gpfs::GpfsModel;
use hvac_sim::iostack::{GpfsBackend, HvacBackend, IoBackend, XfsLocalBackend};
use hvac_types::{ClusterConfig, GpfsConfig};

fn backend_for(label: &str, nodes: u32) -> Box<dyn IoBackend> {
    match label {
        "GPFS" => Box::new(GpfsBackend::new(
            GpfsModel::new(GpfsConfig::shared_alpine()),
        )),
        "XFS" => Box::new(XfsLocalBackend::summit(nodes)),
        _ => {
            let instances: u32 = label
                .trim_start_matches("HVAC(")
                .trim_end_matches("x1)")
                .parse()
                .expect("label");
            let mut cc = ClusterConfig::with_nodes(nodes);
            cc.hvac.instances_per_node = instances;
            cc.gpfs = GpfsConfig::shared_alpine();
            Box::new(HvacBackend::new(&cc, 36))
        }
    }
}

fn main() {
    let systems = ["GPFS", "HVAC(1x1)", "HVAC(2x1)", "HVAC(4x1)", "XFS"];
    println!("CosmoFlow / cosmoUniverse: training minutes vs nodes (10 epochs, BS=8)\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "nodes", systems[0], systems[1], systems[2], systems[3], systems[4]
    );
    for nodes in [32u32, 128, 256, 512, 1024] {
        let mut cfg =
            TrainingConfig::new(DatasetSpec::cosmouniverse(), DnnModel::cosmoflow(), nodes)
                .batch_size(8)
                .epochs(10);
        cfg.max_sim_iters = 6;
        let mut row = format!("{nodes:>6}");
        for sys in &systems {
            let mut backend = backend_for(sys, nodes);
            let r = simulate_training(backend.as_mut(), &cfg);
            row.push_str(&format!(" {:>10.3}", r.total_minutes()));
        }
        println!("{row}");
    }
    println!("\nGPFS flattens once the job saturates its slice of Alpine; HVAC keeps scaling.");
}
