//! The motivating experiment (paper §II-C, Figs. 3–4): MDTest-style
//! `<open-read-close>` transaction storms against GPFS vs node-local XFS.
//!
//! ```text
//! cargo run --release -p hvac-examples --example mdtest [32k|8m]
//! ```

use hvac_sim::gpfs::GpfsModel;
use hvac_sim::iostack::{GpfsBackend, XfsLocalBackend};
use hvac_sim::mdtest::{run_mdtest, MdtestConfig};
use hvac_types::ByteSize;

fn main() {
    let size_arg = std::env::args().nth(1).unwrap_or_else(|| "32k".into());
    let (size, label) = match size_arg.as_str() {
        "8m" => (ByteSize::mib(8), "8 MiB (bandwidth-bound, Fig. 4)"),
        _ => (ByteSize::kib(32), "32 KiB (metadata-bound, Fig. 3)"),
    };

    println!("MDTest {label}: transactions per second\n");
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "nodes", "GPFS", "XFS-on-NVMe", "ratio"
    );
    for nodes in [2u32, 8, 32, 128, 512, 2048, 4096] {
        let cfg = MdtestConfig {
            nodes,
            procs_per_node: 2,
            txns_per_proc: 32,
            file_size: size,
        };
        let mut gpfs_model = GpfsModel::summit();
        gpfs_model.set_client_count(nodes * 2);
        let gpfs = run_mdtest(GpfsBackend::new(gpfs_model), cfg.clone());
        let xfs = run_mdtest(XfsLocalBackend::summit(nodes), cfg);
        println!(
            "{:>6} {:>14.0} {:>14.0} {:>9.1}x",
            nodes,
            gpfs.tps,
            xfs.tps,
            xfs.tps / gpfs.tps
        );
    }
    println!(
        "\nGPFS hits a fixed ceiling (MDS pool for small files, 2.5 TB/s aggregate for large);"
    );
    println!("node-local storage scales linearly — the gap HVAC exists to close.");
}
