//! The paper's future-work items, running for real: prefetch staging
//! (§IV-C), segment-level caching of a file too big for any single node
//! (§III-E), and topology-aware replicas (§IV-G).
//!
//! ```text
//! cargo run -p hvac-examples --example extensions
//! ```

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_hash::placement::{ModuloPlacement, Placement};
use hvac_hash::topology::{Topology, TopologyAware};
use hvac_pfs::MemStore;
use hvac_types::ByteSize;
use hvac_types::FileId;
use std::path::Path;
use std::sync::Arc;

fn main() {
    // --- Prefetch (§IV-C) --------------------------------------------------
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), 64, |_| 32 * 1024);
    let cluster = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(4, 1).dataset_dir("/gpfs/train"),
    )
    .unwrap();
    let staged = cluster.prefetch_dataset(Path::new("/gpfs/train")).unwrap();
    println!("prefetch: staged {staged} files before training started");
    cluster
        .client(0)
        .read_file(Path::new("/gpfs/train/sample_00000000.bin"))
        .unwrap();
    let agg = cluster.aggregate_metrics();
    println!(
        "prefetch: first training read was a cache {} (misses so far: {})\n",
        if agg.cache_hits > 0 { "HIT" } else { "MISS" },
        agg.cache_misses
    );

    // --- Segment-level caching (§III-E) ------------------------------------
    let pfs = Arc::new(MemStore::new());
    let big = 1 << 20; // 1 MiB file...
    pfs.put("/gpfs/train/huge.h5", MemStore::sample_content(1, big));
    let tiny_caches = Cluster::new(
        pfs,
        ClusterOptions::new(8, 1)
            .dataset_dir("/gpfs/train")
            .cache_capacity(ByteSize::kib(256)), // ...with 256 KiB node caches
    )
    .unwrap();
    let whole = tiny_caches
        .client(0)
        .read_file(Path::new("/gpfs/train/huge.h5"));
    println!(
        "segments: whole-file read of 1 MiB into 256 KiB caches -> {}",
        if whole.is_err() {
            "FAILS (as expected)"
        } else {
            "??"
        }
    );
    let assembled = tiny_caches
        .client(0)
        .read_file_segmented(Path::new("/gpfs/train/huge.h5"), 64 * 1024)
        .unwrap();
    let populated = tiny_caches
        .per_node_bytes()
        .iter()
        .filter(|&&b| b > 0)
        .count();
    println!(
        "segments: segmented read -> {} bytes reassembled, spread over {populated}/8 nodes\n",
        assembled.len()
    );

    // --- Topology-aware replicas (§IV-G) ------------------------------------
    let servers = 72;
    let per_rack = 18;
    let base = ModuloPlacement;
    let aware = TopologyAware::new(ModuloPlacement, Topology::regular(servers, per_rack));
    let co_racked = |p: &dyn Placement| {
        (0..10_000u64)
            .filter(|&i| {
                let reps = p.replicas(FileId(hvac_hash::mix64(i)), servers, 2);
                reps[0] / per_rack == reps[1] / per_rack
            })
            .count() as f64
            / 100.0
    };
    println!(
        "topology: modulo replicas co-racked {:.1}% of the time; topology-aware: {:.1}%",
        co_racked(&base),
        co_racked(&aware)
    );
}
