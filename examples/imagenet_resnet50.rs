//! Simulate ResNet50-on-ImageNet-21K training at Summit scale and compare
//! the three systems of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p hvac-examples --example imagenet_resnet50 [nodes] [epochs]
//! ```

use hvac_dl::{simulate_training, DatasetSpec, DnnModel, TrainingConfig};
use hvac_sim::gpfs::GpfsModel;
use hvac_sim::iostack::{GpfsBackend, HvacBackend, IoBackend, XfsLocalBackend};
use hvac_types::{ClusterConfig, GpfsConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(512);
    let epochs: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    let mut cfg = TrainingConfig::new(DatasetSpec::imagenet21k(), DnnModel::resnet50(), nodes)
        .batch_size(32)
        .epochs(epochs);
    cfg.max_sim_iters = 6;

    println!(
        "ResNet50 / ImageNet-21K ({} samples, mean {}), {} nodes x {} ranks, BS={}, {} epochs\n",
        cfg.dataset.train_samples,
        cfg.dataset.mean_size,
        nodes,
        cfg.procs_per_node,
        cfg.batch_size,
        epochs
    );

    let mut backends: Vec<Box<dyn IoBackend>> = vec![
        Box::new(GpfsBackend::new(
            GpfsModel::new(GpfsConfig::shared_alpine()),
        )),
        {
            let mut cc = ClusterConfig::with_nodes(nodes);
            cc.gpfs = GpfsConfig::shared_alpine();
            Box::new(HvacBackend::new(&cc, 7))
        },
        Box::new(XfsLocalBackend::summit(nodes)),
    ];

    let mut gpfs_total = None;
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12}",
        "system", "epoch1", "warm", "total(min)", "vs GPFS"
    );
    for backend in backends.iter_mut() {
        let r = simulate_training(backend.as_mut(), &cfg);
        let total = r.total_minutes();
        let vs = match gpfs_total {
            None => {
                gpfs_total = Some(total);
                "—".to_string()
            }
            Some(g) => format!("{:+.1}%", (1.0 - total / g) * 100.0),
        };
        println!(
            "{:<14} {:>10} {:>10} {:>10.2} {:>12}",
            r.backend,
            r.first_epoch().to_string(),
            r.best_random_epoch().to_string(),
            total,
            vs
        );
    }
    println!("\n(vs GPFS = training-time reduction; the paper reports ~25% on average, >50% at 512+ nodes)");
}
