//! The fail-over extension (paper §III-H, "future work" — implemented
//! here): replicate each file on k=2 HVAC servers so a dead node does not
//! kill the training run.
//!
//! ```text
//! cargo run -p hvac-examples --example failover
//! ```

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_pfs::MemStore;
use std::path::Path;
use std::sync::Arc;

fn read_all(cluster: &Cluster, n_files: u64) -> (u64, u64) {
    let mut ok = 0;
    let mut failed = 0;
    for i in 0..n_files {
        let path = format!("/gpfs/train/sample_{i:08}.bin");
        match cluster.client(0).read_file(Path::new(&path)) {
            Ok(_) => ok += 1,
            Err(_) => failed += 1,
        }
    }
    (ok, failed)
}

fn main() {
    let n_files = 48u64;
    let pfs = Arc::new(MemStore::new());
    pfs.synthesize_dataset(Path::new("/gpfs/train"), n_files, |_| 4096);

    // --- Without replication (the paper's current design) -----------------
    // PFS degradation is switched off so the paper's failure mode is
    // actually visible; the default keeps it armed.
    let fragile = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(4, 1)
            .dataset_dir("/gpfs/train")
            .pfs_fallback(false),
    )
    .unwrap();
    read_all(&fragile, n_files); // warm the cache
    fragile.set_node_down(2, true);
    let (ok, failed) = read_all(&fragile, n_files);
    println!("replication=1, node 2 down: {ok} reads ok, {failed} FAILED");
    println!("  (the paper §III-H: \"if the node-local NVMe fails, [this can] lead to a failed training run\")\n");

    // --- Without replication, but with the default PFS degradation --------
    let degrading = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(4, 1).dataset_dir("/gpfs/train"),
    )
    .unwrap();
    read_all(&degrading, n_files);
    degrading.set_node_down(2, true);
    let (ok, failed) = read_all(&degrading, n_files);
    let degraded = degrading.client(0).metrics().full_snapshot().degraded_reads;
    println!(
        "replication=1 + degradation, node 2 down: {ok} reads ok, {failed} failed, \
         {degraded} served straight from the PFS"
    );
    assert_eq!(failed, 0, "degradation must keep the epoch alive");
    println!("  (slow epoch, but the training run survives)\n");

    // --- With k=2 replication (the §III-H extension) -----------------------
    let robust = Cluster::new(
        pfs,
        ClusterOptions::new(4, 1)
            .dataset_dir("/gpfs/train")
            .replication(2),
    )
    .unwrap();
    read_all(&robust, n_files);
    robust.set_node_down(2, true);
    let (ok, failed) = read_all(&robust, n_files);
    let (_, _, _, _, failovers, _) = robust.client(0).metrics().snapshot();
    println!("replication=2, node 2 down: {ok} reads ok, {failed} failed, {failovers} served by fail-over replicas");
    assert_eq!(failed, 0, "replication must mask a single node failure");

    // Recovery: bring the node back; the primary serves again.
    robust.set_node_down(2, false);
    let (ok, _) = read_all(&robust, n_files);
    println!("node 2 restored: {ok} reads ok");
}
