//! Placeholder library target for the `hvac-examples` package.
//!
//! The interesting code lives in the example binaries at the package root
//! (`quickstart.rs`, `imagenet_resnet50.rs`, ...). Run them with e.g.
//! `cargo run -p hvac-examples --example quickstart`.
