//! Quickstart: stand up an in-process HVAC allocation, read a dataset
//! through the cache, and watch the PFS traffic disappear after epoch 1.
//!
//! ```text
//! cargo run -p hvac-examples --example quickstart
//! ```

use hvac_core::cluster::{Cluster, ClusterOptions};
use hvac_pfs::{FileStore, MemStore, ThrottledStore};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // 1. A "GPFS": here an in-memory store throttled to feel like a busy
    //    parallel file system (2 ms per metadata op).
    let pfs = Arc::new(ThrottledStore::new(
        MemStore::new(),
        Duration::from_millis(2),
        None,
    ));
    let n_files = 64u64;
    let file_size = 64 * 1024;
    pfs.inner()
        .synthesize_dataset(Path::new("/gpfs/train"), n_files, |_| file_size);
    println!("dataset: {n_files} files x {file_size} B on the (throttled) PFS");

    // 2. An allocation: 4 nodes, 1 HVAC server instance per node, caching
    //    everything under /gpfs/train. This is what `alloc_flags "hvac"`
    //    provisions on Summit (paper §III-C).
    let cluster = Cluster::new(
        pfs.clone(),
        ClusterOptions::new(4, 1).dataset_dir("/gpfs/train"),
    )
    .expect("provision cluster");

    // 3. Train for three "epochs": every epoch reads the whole dataset in a
    //    different order (here simply rotated across ranks).
    for epoch in 0..3u64 {
        let t0 = Instant::now();
        let mut bytes = 0u64;
        for i in 0..n_files {
            let rank = ((i + epoch) % 4) as usize;
            let path = format!("/gpfs/train/sample_{i:08}.bin");
            let data = cluster
                .client(rank)
                .read_file(Path::new(&path))
                .expect("read through HVAC");
            bytes += data.len() as u64;
        }
        let (_, pfs_reads, _) = pfs.stats().snapshot();
        println!(
            "epoch {epoch}: read {bytes} B in {:>6.1} ms  (cumulative PFS data reads: {pfs_reads})",
            t0.elapsed().as_secs_f64() * 1e3,
        );
    }

    // 4. Where did reads come from?
    let agg = cluster.aggregate_metrics();
    println!(
        "\nserver metrics: reads={} cache_hits={} misses={} pfs_copies={} hit_rate={:.1}%",
        agg.reads,
        agg.cache_hits,
        agg.cache_misses,
        agg.pfs_copies,
        agg.hit_rate() * 100.0
    );
    println!(
        "per-node cached files: {:?} (hash placement balances the load)",
        cluster.per_node_file_counts()
    );
    assert_eq!(agg.pfs_copies, n_files, "each file fetched exactly once");
}
